//! A lightweight, comment- and string-aware tokenizer for Rust source.
//!
//! This is intentionally **not** a full Rust lexer (no `syn` — the workspace
//! only sanctions `rand`/`proptest`/`criterion`/`serde` as external deps).
//! It produces just enough structure for the audit rules:
//!
//! - identifiers / keywords, with line numbers;
//! - numeric literals, classified as float-like or integer-like;
//! - one- and two-character punctuation (`==`, `!=`, `::`, …);
//! - comments and string/char literals are consumed, never tokenized —
//!   except that `// audit:allow(<rule>)` markers are extracted so rules can
//!   honor inline suppressions.
//!
//! Raw strings (`r"…"`, `r#"…"#`), nested block comments, char literals
//! (including `'\''`), and lifetimes (`'a`, which must *not* open a char
//! literal) are all handled; those are exactly the constructs that break
//! naive regex-based scanners.

/// One lexical token with its 1-indexed source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer-looking literal (`3`, `0x1F`, `10_000`, `7u32`).
    Int,
    /// Float-looking literal (`0.0`, `1e-9`, `2.5f64`, `3f32`).
    Float,
    /// Punctuation, one or two characters (`==`, `!=`, `::`, `(`, `.`).
    Punct,
}

/// An inline suppression marker: `// audit:allow(rule-name)` (also accepted
/// inside block comments). Applies to findings on the same line or the line
/// immediately below (so a marker can sit on its own line above the code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    pub rule: String,
    pub line: usize,
}

/// Tokenizer output: the token stream plus any suppression markers found in
/// comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub suppressions: Vec<Suppression>,
    /// Lines carrying an `// audit:hot` marker: the next `fn` item is under
    /// the transitive allocation-free contract (`hot-alloc` rule).
    pub hot_markers: Vec<usize>,
}

const ALLOW_MARKER: &str = "audit:allow(";
const HOT_MARKER: &str = "audit:hot";

/// Tokenize Rust source. Never fails: unrecognized bytes are skipped, so the
/// audit degrades gracefully on exotic code instead of crashing the gate.
pub fn tokenize(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                scan_allow_marker(&src[start..i], line, &mut out.suppressions);
                scan_hot_marker(&src[start..i], line, &mut out.hot_markers);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let (end, endline) =
                    skip_block_comment(src, i, line, &mut out.suppressions, &mut out.hot_markers);
                i = end;
                line = endline;
            }
            b'"' => {
                let (end, endline) = skip_string(bytes, i + 1, line);
                i = end;
                line = endline;
            }
            b'r' if is_raw_string_start(bytes, i) => {
                let (end, endline) = skip_raw_string(bytes, i + 1, line);
                i = end;
                line = endline;
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                let (end, endline) = skip_string(bytes, i + 2, line);
                i = end;
                line = endline;
            }
            // Byte raw strings `br"…"` / `br#"…"#`: without this arm the `b`
            // and `r` lex as an identifier and the body is scanned as a
            // *regular* string, so an inner `"` desynchronizes the stream.
            b'b' if bytes.get(i + 1) == Some(&b'r')
                && matches!(bytes.get(i + 2), Some(&b'"') | Some(&b'#')) =>
            {
                let (end, endline) = skip_raw_string(bytes, i + 2, line);
                i = end;
                line = endline;
            }
            b'\'' => {
                // Distinguish a char literal from a lifetime: a lifetime is
                // `'ident` NOT followed by a closing quote.
                if let Some((end, endline)) = try_skip_char_literal(bytes, i, line) {
                    i = end;
                    line = endline;
                } else {
                    // Lifetime tick: emit nothing, skip the quote.
                    i += 1;
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let (end, kind) = scan_number(bytes, i);
                out.tokens.push(Token {
                    kind,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            _ if c.is_ascii_whitespace() => {
                i += 1;
            }
            _ => {
                // Punctuation: greedily form the two-char operators the rules
                // care about; everything else is a single char.
                let two = src.get(i..i + 2).unwrap_or("");
                let text = if matches!(
                    two,
                    "==" | "!=" | "<=" | ">=" | "::" | "->" | "=>" | "&&" | "||" | ".." | "<<" | ">>"
                ) {
                    i += 2;
                    two.to_string()
                } else {
                    let ch = src[i..].chars().next().unwrap_or('\u{FFFD}');
                    i += ch.len_utf8();
                    ch.to_string()
                };
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    out
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // `r"` or `r#`— only when `r` is not part of a longer identifier.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#'))
}

fn skip_block_comment(
    src: &str,
    start: usize,
    mut line: usize,
    suppressions: &mut Vec<Suppression>,
    hot_markers: &mut Vec<usize>,
) -> (usize, usize) {
    let bytes = src.as_bytes();
    let mut depth = 0usize;
    let mut i = start;
    let comment_start = start;
    let start_line = line;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            line += 1;
            i += 1;
        } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
            depth += 1;
            i += 2;
        } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
            depth -= 1;
            i += 2;
            if depth == 0 {
                scan_allow_marker(&src[comment_start..i], start_line, suppressions);
                scan_hot_marker(&src[comment_start..i], start_line, hot_markers);
                return (i, line);
            }
        } else {
            i += 1;
        }
    }
    (i, line)
}

fn skip_string(bytes: &[u8], mut i: usize, mut line: usize) -> (usize, usize) {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                // An escaped newline (string continuation) still ends a
                // source line; skipping it blindly desynchronizes every
                // later line number.
                if bytes.get(i + 1) == Some(&b'\n') {
                    line += 1;
                }
                i += 2;
            }
            b'"' => return (i + 1, line),
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, line)
}

fn skip_raw_string(bytes: &[u8], mut i: usize, mut line: usize) -> (usize, usize) {
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        // Not actually a raw string (`r#ident` raw identifier); let the main
        // loop re-scan from here.
        return (i, line);
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            line += 1;
            i += 1;
        } else if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return (j, line);
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    (i, line)
}

fn try_skip_char_literal(bytes: &[u8], i: usize, line: usize) -> Option<(usize, usize)> {
    // i points at the opening quote.
    let mut j = i + 1;
    if j >= bytes.len() {
        return None;
    }
    if bytes[j] == b'\\' {
        j += 2; // escape + escaped char ('\n', '\'', '\\', '\u{..}' start)
        if bytes.get(j - 1) == Some(&b'u') && bytes.get(j) == Some(&b'{') {
            while j < bytes.len() && bytes[j] != b'}' {
                j += 1;
            }
            j += 1;
        }
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return Some((j + 1, line));
    }
    // Unescaped: a char literal closes after exactly one (possibly multibyte)
    // character. A lifetime has an identifier char NOT followed by a quote.
    let ch_len = utf8_len(bytes[j]);
    if bytes.get(j + ch_len) == Some(&b'\'') {
        Some((j + ch_len + 1, line))
    } else {
        None
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

fn scan_number(bytes: &[u8], start: usize) -> (usize, TokenKind) {
    let mut i = start;
    let mut float = false;
    if bytes[i] == b'0' && matches!(bytes.get(i + 1), Some(&b'x') | Some(&b'o') | Some(&b'b')) {
        i += 2;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        return (i, TokenKind::Int);
    }
    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
        i += 1;
    }
    // Fractional part: a `.` followed by a digit (NOT `..` or a method call).
    if i < bytes.len()
        && bytes[i] == b'.'
        && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
    {
        float = true;
        i += 1;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
    } else if i < bytes.len()
        && bytes[i] == b'.'
        && !matches!(bytes.get(i + 1), Some(b) if b.is_ascii_alphabetic() || *b == b'.' || *b == b'_')
    {
        // Trailing-dot float like `1.`
        float = true;
        i += 1;
    }
    // Exponent.
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if matches!(bytes.get(j), Some(&b'+') | Some(&b'-')) {
            j += 1;
        }
        if bytes.get(j).is_some_and(|b| b.is_ascii_digit()) {
            float = true;
            i = j;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
        }
    }
    // Suffix (`f64`, `u32`, …).
    let sfx_start = i;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    let suffix = std::str::from_utf8(&bytes[sfx_start..i]).unwrap_or("");
    if suffix.starts_with('f') {
        float = true;
    }
    (i, if float { TokenKind::Float } else { TokenKind::Int })
}

fn scan_allow_marker(comment: &str, start_line: usize, out: &mut Vec<Suppression>) {
    // A block comment can span lines; attribute each marker to the line it
    // physically sits on.
    for (off, text) in comment.lines().enumerate() {
        let mut rest = text;
        while let Some(pos) = rest.find(ALLOW_MARKER) {
            let tail = &rest[pos + ALLOW_MARKER.len()..];
            if let Some(close) = tail.find(')') {
                let rule = tail[..close].trim().to_string();
                if !rule.is_empty() {
                    out.push(Suppression {
                        rule,
                        line: start_line + off,
                    });
                }
                rest = &tail[close + 1..];
            } else {
                break;
            }
        }
    }
}

fn scan_hot_marker(comment: &str, start_line: usize, out: &mut Vec<usize>) {
    for (off, text) in comment.lines().enumerate() {
        if let Some(pos) = text.find(HOT_MARKER) {
            // Word boundary on the right so `audit:hotfix` is not a marker.
            let tail = &text[pos + HOT_MARKER.len()..];
            let bounded = !tail
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
            if bounded {
                out.push(start_line + off);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn float_vs_int_literals() {
        let toks = kinds("let x = 0.0; let y = 1e-9; let z = 3f64; let n = 42; let h = 0xFF;");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, vec!["0.0", "1e-9", "3f64"]);
        let ints: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Int)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ints, vec!["42", "0xFF"]);
    }

    #[test]
    fn range_is_not_a_float() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks.contains(&(TokenKind::Int, "0".into())));
        assert!(toks.contains(&(TokenKind::Punct, "..".into())));
        assert!(toks.contains(&(TokenKind::Int, "10".into())));
    }

    #[test]
    fn comments_and_strings_are_invisible() {
        let src = r##"
            // x == 0.0 in a line comment
            /* unwrap() in /* a nested */ block */
            let s = "panic!(\"no\") == 0.0";
            let r = r#"unwrap() "quoted" == 0.0"#;
        "##;
        let lexed = tokenize(src);
        assert!(!lexed.tokens.iter().any(|t| t.text == "unwrap"));
        assert!(!lexed.tokens.iter().any(|t| t.text == "=="));
        assert!(!lexed.tokens.iter().any(|t| t.text == "panic"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { let q = '\\''; let c = 'x'; q.max(c) }";
        let lexed = tokenize(src);
        assert!(lexed.tokens.iter().any(|t| t.text == "max"));
        // The identifier `a` from the lifetime is tokenized; the quote is not
        // treated as an unterminated char literal (which would swallow code).
        assert!(lexed.tokens.iter().any(|t| t.text == "str"));
    }

    #[test]
    fn allow_markers_extracted_with_lines() {
        let src = "let a = 1;\nx == 0.0; // audit:allow(float-eq)\n/* audit:allow(panicking) */\n";
        let lexed = tokenize(src);
        assert_eq!(
            lexed.suppressions,
            vec![
                Suppression { rule: "float-eq".into(), line: 2 },
                Suppression { rule: "panicking".into(), line: 3 },
            ]
        );
    }

    #[test]
    fn hot_markers_extracted_with_lines() {
        let src = "// audit:hot\nfn f() {}\n/* audit:hot */\nfn g() {}\n// audit:hotfix note\n";
        let lexed = tokenize(src);
        // The `audit:hotfix` comment is prose, not a marker.
        assert_eq!(lexed.hot_markers, vec![1, 3]);
    }

    #[test]
    fn nested_block_comments_do_not_desync() {
        // Depth-tracked `/* /* */ */`: the inner close must not terminate the
        // outer comment, or `still_hidden` would leak into the stream.
        let src = "/* outer /* inner */ still_hidden == 0.0 */ visible();";
        let lexed = tokenize(src);
        assert!(!lexed.tokens.iter().any(|t| t.text == "still_hidden"));
        assert!(!lexed.tokens.iter().any(|t| t.text == "=="));
        assert!(lexed.tokens.iter().any(|t| t.text == "visible"));
        // Two nesting levels, with code following on a later line.
        let src2 = "/* a /* b /* c */ d */ e */\nafter();";
        let lexed2 = tokenize(src2);
        let after = lexed2.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 2);
    }

    #[test]
    fn raw_strings_with_hashes_do_not_desync() {
        // `"#` inside an `r##"…"##` body is not a terminator; only the full
        // `"##` is. A desync here would tokenize the tail of the literal.
        let src = r####"let s = r##"inner "# quote unwrap() "##; tail();"####;
        let lexed = tokenize(src);
        assert!(!lexed.tokens.iter().any(|t| t.text == "unwrap"));
        assert!(!lexed.tokens.iter().any(|t| t.text == "inner"));
        assert!(lexed.tokens.iter().any(|t| t.text == "tail"));
    }

    #[test]
    fn byte_raw_strings_do_not_desync() {
        // `br#"…"#` bodies may contain bare quotes; scanning them as a
        // regular string would end at the first inner `"`.
        let src = r###"let b = br#"say "hi" == 0.0"#; ok();"###;
        let lexed = tokenize(src);
        assert!(!lexed.tokens.iter().any(|t| t.text == "hi"));
        assert!(!lexed.tokens.iter().any(|t| t.text == "=="));
        assert!(lexed.tokens.iter().any(|t| t.text == "ok"));
        // Identifiers starting with `br` are still plain identifiers.
        let lexed2 = tokenize("let bridge = 1;");
        assert!(lexed2.tokens.iter().any(|t| t.text == "bridge"));
    }

    #[test]
    fn escaped_newline_in_string_keeps_line_numbers() {
        let src = "let s = \"a\\\nb\";\nmarker();";
        let lexed = tokenize(src);
        let m = lexed.tokens.iter().find(|t| t.text == "marker").unwrap();
        assert_eq!(m.line, 3);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let s = \"line1\nline2\";\nlet t /* c\nc */ = 5;\nbad();";
        let lexed = tokenize(src);
        let bad = lexed.tokens.iter().find(|t| t.text == "bad").unwrap();
        assert_eq!(bad.line, 5);
    }
}
