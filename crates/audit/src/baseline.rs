//! Baseline ("ratchet") handling.
//!
//! The checked-in `audit-baseline.txt` records, per `(rule, file)`, how many
//! findings are currently tolerated. The gate fails only on *regressions*
//! (counts above baseline, or findings in files with no baseline entry), so
//! legacy debt doesn't block CI while new debt can never land. Improvements
//! are reported so the baseline can be re-tightened with `--update-baseline`.
//!
//! # Format v2
//!
//! ```text
//! version 2
//! rule <rule-id> <rule-version>
//! <rule-id> <workspace-relative-path> <count>
//! ```
//!
//! `rule` lines pin the rule version the entries were recorded against; when
//! a rule's matching semantics tighten, its [`crate::rules::RuleInfo::version`]
//! is bumped and **only that rule's** baseline entries go stale (they are
//! dropped from the ratchet, so the rule's findings resurface as regressions
//! until the baseline is regenerated). Entries for rules without a `rule`
//! line, and whole files in the legacy v1 format (`<rule> <file> <count>`
//! lines only, no `version` header), are grandfathered at the current rule
//! versions.
//!
//! Lines are sorted, `#` comments and blanks allowed anywhere.

use crate::rules::{Finding, Rule};
use std::collections::BTreeMap;

pub type BaselineMap = BTreeMap<(Rule, String), usize>;

/// Current baseline format version emitted by [`render`].
pub const FORMAT_VERSION: u32 = 2;

/// A parsed baseline: tolerated counts plus the rule versions they were
/// recorded against.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Format version of the parsed file (1 when no `version` header).
    pub format_version: u32,
    /// Tolerated findings per (rule, file) — as written, staleness not yet
    /// applied.
    pub entries: BaselineMap,
    /// Rule version each `rule` line pinned; rules absent here are
    /// grandfathered at their current version.
    pub rule_versions: BTreeMap<Rule, u32>,
}

impl Baseline {
    /// Rules whose pinned version no longer matches the live rule: their
    /// entries are invalid. Returns `(rule, recorded, current)`.
    pub fn stale_rules(&self) -> Vec<(Rule, u32, u32)> {
        self.rule_versions
            .iter()
            .filter(|(rule, &recorded)| recorded != rule.version())
            .map(|(rule, &recorded)| (*rule, recorded, rule.version()))
            .collect()
    }

    /// Entries with stale-rule lines removed — the map the ratchet actually
    /// diffs against.
    pub fn effective_entries(&self) -> BaselineMap {
        let stale: Vec<Rule> = self.stale_rules().iter().map(|(r, _, _)| *r).collect();
        self.entries
            .iter()
            .filter(|((rule, _), _)| !stale.contains(rule))
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }
}

/// Parse baseline text (v1 or v2). Unknown rules or malformed lines are
/// errors — a silently-ignored baseline line would silently re-admit
/// findings.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut baseline = Baseline { format_version: 1, ..Baseline::default() };
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let first = parts.next().unwrap_or_default();
        match first {
            "version" => {
                let v: u32 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("baseline line {}: bad `version` line", idx + 1))?;
                if v == 0 || v > FORMAT_VERSION {
                    return Err(format!(
                        "baseline line {}: unsupported format version {v} (this tool reads 1..={FORMAT_VERSION})",
                        idx + 1
                    ));
                }
                baseline.format_version = v;
            }
            "rule" => {
                let (Some(id), Some(ver)) = (parts.next(), parts.next()) else {
                    return Err(format!(
                        "baseline line {}: expected `rule <id> <version>`",
                        idx + 1
                    ));
                };
                let rule = Rule::from_id(id)
                    .ok_or_else(|| format!("baseline line {}: unknown rule `{id}`", idx + 1))?;
                let ver: u32 = ver
                    .parse()
                    .map_err(|_| format!("baseline line {}: bad rule version `{ver}`", idx + 1))?;
                if baseline.rule_versions.insert(rule, ver).is_some() {
                    return Err(format!("baseline line {}: duplicate `rule` line", idx + 1));
                }
            }
            rule_id => {
                let (Some(file), Some(count)) = (parts.next(), parts.next()) else {
                    return Err(format!(
                        "baseline line {}: expected `<rule> <file> <count>`",
                        idx + 1
                    ));
                };
                let rule = Rule::from_id(rule_id).ok_or_else(|| {
                    format!("baseline line {}: unknown rule `{rule_id}`", idx + 1)
                })?;
                let count: usize = count
                    .parse()
                    .map_err(|_| format!("baseline line {}: bad count `{count}`", idx + 1))?;
                if baseline.entries.insert((rule, file.to_string()), count).is_some() {
                    return Err(format!("baseline line {}: duplicate entry", idx + 1));
                }
            }
        }
    }
    Ok(baseline)
}

/// Serialize findings into baseline text (v2, sorted, stable). `rule` lines
/// are emitted only for rules that have entries, pinned at their current
/// versions.
pub fn render(findings: &[Finding]) -> String {
    let counts = count_by_key(findings);
    let mut out = String::from(
        "# snbc-audit baseline — tolerated findings per (rule, file).\n\
         # Regenerate with `cargo run -p snbc-audit -- --update-baseline`.\n\
         # `rule` lines pin rule versions: bumping a rule invalidates only its entries.\n",
    );
    out.push_str(&format!("version {FORMAT_VERSION}\n"));
    let mut rules: Vec<Rule> = counts.keys().map(|(r, _)| *r).collect();
    rules.sort();
    rules.dedup();
    for rule in rules {
        out.push_str(&format!("rule {} {}\n", rule.id(), rule.version()));
    }
    for ((rule, file), count) in &counts {
        out.push_str(&format!("{} {} {}\n", rule.id(), file, count));
    }
    out
}

fn count_by_key(findings: &[Finding]) -> BaselineMap {
    let mut map = BaselineMap::new();
    for f in findings {
        *map.entry((f.rule, f.file.clone())).or_insert(0) += 1;
    }
    map
}

/// Outcome of diffing current findings against the baseline.
#[derive(Debug, Default)]
pub struct Diff {
    /// Findings beyond what the baseline tolerates, grouped for reporting.
    pub regressions: Vec<(Rule, String, usize, usize)>, // (rule, file, current, tolerated)
    /// Baseline entries whose counts dropped (candidates for tightening).
    pub improvements: Vec<(Rule, String, usize, usize)>,
    /// Rules whose baseline entries were invalidated by a version bump:
    /// `(rule, recorded_version, current_version)`.
    pub stale: Vec<(Rule, u32, u32)>,
}

impl Diff {
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare current findings to the baseline. Entries of stale rules are
/// ignored (their findings count as regressions again).
pub fn diff(findings: &[Finding], baseline: &Baseline) -> Diff {
    let current = count_by_key(findings);
    let tolerated_map = baseline.effective_entries();
    let mut out = Diff { stale: baseline.stale_rules(), ..Diff::default() };
    for ((rule, file), &count) in &current {
        let tolerated = tolerated_map.get(&(*rule, file.clone())).copied().unwrap_or(0);
        if count > tolerated {
            out.regressions.push((*rule, file.clone(), count, tolerated));
        }
    }
    for ((rule, file), &tolerated) in &tolerated_map {
        let count = current.get(&(*rule, file.clone())).copied().unwrap_or(0);
        if count < tolerated {
            out.improvements.push((*rule, file.clone(), count, tolerated));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding(rule: Rule, file: &str, line: usize) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: String::new(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn roundtrip_v2() {
        let findings = vec![
            finding(Rule::FloatEq, "crates/a/src/lib.rs", 3),
            finding(Rule::FloatEq, "crates/a/src/lib.rs", 9),
            finding(Rule::Panicking, "crates/b/src/lib.rs", 1),
        ];
        let text = render(&findings);
        assert!(text.contains("version 2"));
        assert!(text.contains("rule float-eq 1"));
        let b = parse(&text).unwrap();
        assert_eq!(b.format_version, 2);
        assert_eq!(b.entries.len(), 2);
        assert_eq!(b.entries[&(Rule::FloatEq, "crates/a/src/lib.rs".into())], 2);
        assert!(b.stale_rules().is_empty());
        assert!(diff(&findings, &b).is_clean());
    }

    #[test]
    fn v1_files_are_grandfathered() {
        let b = parse("float-eq crates/a/src/lib.rs 1\n").unwrap();
        assert_eq!(b.format_version, 1);
        assert!(b.rule_versions.is_empty());
        assert!(b.stale_rules().is_empty());
        let findings = vec![finding(Rule::FloatEq, "crates/a/src/lib.rs", 3)];
        assert!(diff(&findings, &b).is_clean());
    }

    #[test]
    fn version_bump_invalidates_only_that_rule() {
        // Record float-eq at a version that no longer exists; panicking stays
        // pinned correctly.
        let text = "version 2\n\
                    rule float-eq 999\n\
                    rule panicking 1\n\
                    float-eq crates/a/src/lib.rs 1\n\
                    panicking crates/b/src/lib.rs 1\n";
        let b = parse(text).unwrap();
        let stale = b.stale_rules();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].0, Rule::FloatEq);
        let findings = vec![
            finding(Rule::FloatEq, "crates/a/src/lib.rs", 3),
            finding(Rule::Panicking, "crates/b/src/lib.rs", 4),
        ];
        let d = diff(&findings, &b);
        // float-eq resurfaces (its entry is stale); panicking stays tolerated.
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].0, Rule::FloatEq);
        assert_eq!(d.stale.len(), 1);
    }

    #[test]
    fn effect_migration_invalidates_only_the_migrated_rules() {
        // A baseline written before the interprocedural-effects migration:
        // raw-thread/raw-instant entries recorded against the old syntactic
        // matchers (v2), env-read against v1, float-eq already current. After
        // the migration (raw-thread v3, raw-instant v3, env-read v2) only the
        // migrated rules' entries go stale; float-eq's ratchet keeps holding.
        let text = "version 2\n\
                    rule env-read 1\n\
                    rule float-eq 1\n\
                    rule raw-instant 2\n\
                    rule raw-thread 2\n\
                    env-read crates/a/src/lib.rs 2\n\
                    float-eq crates/a/src/lib.rs 1\n\
                    raw-instant crates/b/src/lib.rs 1\n\
                    raw-thread crates/b/src/lib.rs 1\n";
        let b = parse(&text.replace("                    ", "")).unwrap();
        let stale: Vec<Rule> = b.stale_rules().iter().map(|(r, _, _)| *r).collect();
        assert_eq!(stale, vec![Rule::RawThread, Rule::RawInstant, Rule::EnvRead]);
        let effective = b.effective_entries();
        assert_eq!(effective.len(), 1);
        assert!(effective.contains_key(&(Rule::FloatEq, "crates/a/src/lib.rs".into())));

        // The same counts re-rendered today parse back clean: the pins now
        // carry the post-migration versions.
        let findings = vec![
            finding(Rule::EnvRead, "crates/a/src/lib.rs", 1),
            finding(Rule::FloatEq, "crates/a/src/lib.rs", 2),
            finding(Rule::RawThread, "crates/b/src/lib.rs", 3),
        ];
        let regenerated = parse(&render(&findings)).unwrap();
        assert!(regenerated.stale_rules().is_empty());
        assert!(diff(&findings, &regenerated).is_clean());
        assert!(render(&findings).contains("rule raw-thread 3"));
        assert!(render(&findings).contains("rule env-read 2"));
    }

    #[test]
    fn regression_on_new_file_and_on_count_increase() {
        let baseline = parse("version 2\nrule float-eq 1\nfloat-eq crates/a/src/lib.rs 1\n").unwrap();
        let more = vec![
            finding(Rule::FloatEq, "crates/a/src/lib.rs", 1),
            finding(Rule::FloatEq, "crates/a/src/lib.rs", 2),
        ];
        let d = diff(&more, &baseline);
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].2, 2);
        let fresh = vec![finding(Rule::Panicking, "crates/c/src/lib.rs", 5)];
        assert!(!diff(&fresh, &baseline).is_clean());
    }

    #[test]
    fn improvement_reported_not_fatal() {
        let baseline = parse("panicking crates/b/src/lib.rs 4\n").unwrap();
        let d = diff(&[], &baseline);
        assert!(d.is_clean());
        assert_eq!(d.improvements.len(), 1);
        assert_eq!(d.improvements[0].3, 4);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(parse("float-eq only-two-fields\n").is_err());
        assert!(parse("no-such-rule f.rs 1\n").is_err());
        assert!(parse("float-eq f.rs not-a-number\n").is_err());
        assert!(parse("float-eq f.rs 1\nfloat-eq f.rs 2\n").is_err());
        assert!(parse("version 99\n").is_err());
        assert!(parse("version x\n").is_err());
        assert!(parse("rule float-eq\n").is_err());
        assert!(parse("rule float-eq 1\nrule float-eq 1\n").is_err());
        assert!(parse("rule no-such-rule 1\n").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let b = parse("# header\n\nversion 2\nfloat-eq a.rs 1\n").unwrap();
        assert_eq!(b.entries.len(), 1);
    }

    #[test]
    fn render_pins_only_rules_with_entries() {
        let text = render(&[finding(Rule::NondetIter, "a.rs", 1)]);
        assert!(text.contains("rule nondet-iter 1"));
        assert!(!text.contains("rule float-eq"));
    }

    #[test]
    fn dataflow_rule_bumps_stale_only_their_own_pins() {
        // A baseline written before the dataflow engine landed: it pins the
        // pre-bump versions. Exactly those rules go stale — nothing else.
        let b = parse(
            "version 2\n\
             rule unordered-reduce 2\n\
             rule swallowed-result 1\n\
             rule float-eq 1\n\
             unordered-reduce crates/a/src/lib.rs 2\n\
             swallowed-result crates/a/src/lib.rs 1\n\
             float-eq crates/b/src/lib.rs 1\n",
        )
        .unwrap();
        let stale = b.stale_rules();
        let stale_ids: Vec<&str> = stale.iter().map(|(r, _, _)| r.id()).collect();
        assert_eq!(stale_ids, vec!["swallowed-result", "unordered-reduce"]);
        assert!(stale
            .iter()
            .all(|&(r, recorded, current)| recorded < current && r.version() == current));
        // The stale rules' tolerances are dropped, so their findings now
        // count as regressions; the float-eq entry survives untouched.
        let active = b.effective_entries();
        assert_eq!(active.len(), 1);
        assert!(active.contains_key(&(Rule::FloatEq, "crates/b/src/lib.rs".to_string())));
        // A fresh render pins the bumped versions (and par-capture-race at v1).
        let text = render(&[
            finding(Rule::UnorderedReduce, "a.rs", 1),
            finding(Rule::SwallowedResult, "a.rs", 2),
            finding(Rule::ParCaptureRace, "a.rs", 3),
        ]);
        assert!(text.contains("rule unordered-reduce 3"));
        assert!(text.contains("rule swallowed-result 2"));
        assert!(text.contains("rule par-capture-race 1"));
    }
}
