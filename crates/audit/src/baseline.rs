//! Baseline ("ratchet") handling.
//!
//! The checked-in `audit-baseline.txt` records, per `(rule, file)`, how many
//! findings are currently tolerated. The gate fails only on *regressions*
//! (counts above baseline, or findings in files with no baseline entry), so
//! legacy debt doesn't block CI while new debt can never land. Improvements
//! are reported so the baseline can be re-tightened with `--update-baseline`.
//!
//! File format, one entry per line, sorted, `#` comments allowed:
//!
//! ```text
//! <rule-id> <workspace-relative-path> <count>
//! ```

use crate::rules::{Finding, Rule};
use std::collections::BTreeMap;

pub type BaselineMap = BTreeMap<(Rule, String), usize>;

/// Parse baseline text. Unknown rules or malformed lines are errors — a
/// silently-ignored baseline line would silently re-admit findings.
pub fn parse(text: &str) -> Result<BaselineMap, String> {
    let mut map = BaselineMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(file), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("baseline line {}: expected `<rule> <file> <count>`", idx + 1));
        };
        let rule = Rule::from_id(rule)
            .ok_or_else(|| format!("baseline line {}: unknown rule `{rule}`", idx + 1))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", idx + 1))?;
        if map.insert((rule, file.to_string()), count).is_some() {
            return Err(format!("baseline line {}: duplicate entry", idx + 1));
        }
    }
    Ok(map)
}

/// Serialize findings into baseline text (sorted, stable).
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# snbc-audit baseline — tolerated findings per (rule, file).\n\
         # Regenerate with `cargo run -p snbc-audit -- --update-baseline`.\n",
    );
    for ((rule, file), count) in &count_by_key(findings) {
        out.push_str(&format!("{} {} {}\n", rule.id(), file, count));
    }
    out
}

fn count_by_key(findings: &[Finding]) -> BaselineMap {
    let mut map = BaselineMap::new();
    for f in findings {
        *map.entry((f.rule, f.file.clone())).or_insert(0) += 1;
    }
    map
}

/// Outcome of diffing current findings against the baseline.
#[derive(Debug, Default)]
pub struct Diff {
    /// Findings beyond what the baseline tolerates, grouped for reporting.
    pub regressions: Vec<(Rule, String, usize, usize)>, // (rule, file, current, tolerated)
    /// Baseline entries whose counts dropped (candidates for tightening).
    pub improvements: Vec<(Rule, String, usize, usize)>,
}

impl Diff {
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare current findings to the baseline.
pub fn diff(findings: &[Finding], baseline: &BaselineMap) -> Diff {
    let current = count_by_key(findings);
    let mut out = Diff::default();
    for ((rule, file), &count) in &current {
        let tolerated = baseline.get(&(*rule, file.clone())).copied().unwrap_or(0);
        if count > tolerated {
            out.regressions.push((*rule, file.clone(), count, tolerated));
        }
    }
    for ((rule, file), &tolerated) in baseline {
        let count = current.get(&(*rule, file.clone())).copied().unwrap_or(0);
        if count < tolerated {
            out.improvements.push((*rule, file.clone(), count, tolerated));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding(rule: Rule, file: &str, line: usize) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn roundtrip() {
        let findings = vec![
            finding(Rule::FloatEq, "crates/a/src/lib.rs", 3),
            finding(Rule::FloatEq, "crates/a/src/lib.rs", 9),
            finding(Rule::Panicking, "crates/b/src/lib.rs", 1),
        ];
        let text = render(&findings);
        let map = parse(&text).unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map[&(Rule::FloatEq, "crates/a/src/lib.rs".into())], 2);
        assert!(diff(&findings, &map).is_clean());
    }

    #[test]
    fn regression_on_new_file_and_on_count_increase() {
        let baseline = parse("float-eq crates/a/src/lib.rs 1\n").unwrap();
        // Count increase in a known file.
        let more = vec![
            finding(Rule::FloatEq, "crates/a/src/lib.rs", 1),
            finding(Rule::FloatEq, "crates/a/src/lib.rs", 2),
        ];
        let d = diff(&more, &baseline);
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].2, 2);
        // A fresh file not in the baseline at all.
        let fresh = vec![finding(Rule::Panicking, "crates/c/src/lib.rs", 5)];
        assert!(!diff(&fresh, &baseline).is_clean());
    }

    #[test]
    fn improvement_reported_not_fatal() {
        let baseline = parse("panicking crates/b/src/lib.rs 4\n").unwrap();
        let d = diff(&[], &baseline);
        assert!(d.is_clean());
        assert_eq!(d.improvements.len(), 1);
        assert_eq!(d.improvements[0].3, 4);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(parse("float-eq only-two-fields\n").is_err());
        assert!(parse("no-such-rule f.rs 1\n").is_err());
        assert!(parse("float-eq f.rs not-a-number\n").is_err());
        assert!(parse("float-eq f.rs 1\nfloat-eq f.rs 2\n").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let map = parse("# header\n\nfloat-eq a.rs 1\n").unwrap();
        assert_eq!(map.len(), 1);
    }
}
