//! The effect lattice and per-function **leaf** effect inference.
//!
//! An [`Effect`] is an observable capability a function exercises directly
//! (a *leaf*) or reaches through a call (*transitive*, computed by
//! [`crate::callgraph`]). The lattice is a flat powerset: a function's effect
//! set is the union of its leaves and its callees' sets, so propagation is a
//! monotone fixpoint and SCC condensation makes it a single reverse-
//! topological pass.
//!
//! Leaves are recognized from token shapes, alias-resolved through the
//! [`crate::scopes::ScopeTable`] — so `use std::thread::spawn as sp; sp(..)`
//! is a `spawns-thread` leaf even though the token `spawn` never appears at
//! the call site, and a token inside a `use` declaration (never followed by
//! `(`) is not a leaf at all.
//!
//! **Ownership masking**: a leaf inside the crate that *owns* the effect
//! (e.g. the `SNBC_THREADS` read inside `crates/par`) is sanctioned wrapper
//! behavior and produces no leaf, so it never propagates to callers. The
//! owner lists mirror the crate gating of the syntactic rules
//! ([`crate::THREAD_OWNER_CRATES`] and friends).

use crate::scopes::{path_is, ScopeTable};
use crate::syntax::ItemTree;
use crate::tokenizer::{Token, TokenKind};
use std::fmt;

/// One observable capability. Order is the canonical report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// `std::thread::spawn` (alias-aware).
    SpawnsThread,
    /// `Instant::now` / `SystemTime::now`.
    ReadsTime,
    /// `std::env::var{,_os}` / `vars{,_os}`.
    ReadsEnv,
    /// `panic!`-family macros, `.unwrap()` / `.expect()`.
    Panics,
    /// Heap allocation: `vec!`/`format!`, collection constructors,
    /// `.to_vec()`/`.collect()`/`.to_string()`/… tails.
    Allocates,
    /// A float reduction whose evaluation order is not canonical
    /// (`nondet-iter` / `unordered-reduce` sites, fed in by the rule layer).
    UnorderedFpFold,
    /// Filesystem / stream IO: `std::fs`/`std::io` calls, `print!`-family.
    Io,
    /// At least one call could not be resolved to a workspace function; the
    /// inferred set is a lower bound.
    UnresolvedCall,
}

impl Effect {
    pub const ALL: [Effect; 8] = [
        Effect::SpawnsThread,
        Effect::ReadsTime,
        Effect::ReadsEnv,
        Effect::Panics,
        Effect::Allocates,
        Effect::UnorderedFpFold,
        Effect::Io,
        Effect::UnresolvedCall,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Effect::SpawnsThread => "spawns-thread",
            Effect::ReadsTime => "reads-time",
            Effect::ReadsEnv => "reads-env",
            Effect::Panics => "panics",
            Effect::Allocates => "allocates",
            Effect::UnorderedFpFold => "unordered-fp-fold",
            Effect::Io => "io",
            Effect::UnresolvedCall => "unresolved-call",
        }
    }

    fn bit(self) -> u16 {
        // Discriminants are 0..=7, so the cast is exact. audit:allow(lossy-cast)
        1u16 << (self as u16)
    }

    /// Crates whose direct use of this effect is sanctioned wrapper behavior
    /// (the effect is their job); leaves there are masked before propagation.
    pub fn owner_crates(self) -> &'static [&'static str] {
        match self {
            Effect::SpawnsThread => crate::THREAD_OWNER_CRATES,
            Effect::ReadsTime => crate::INSTANT_OWNER_CRATES,
            Effect::ReadsEnv => crate::ENV_OWNER_CRATES,
            Effect::UnorderedFpFold => crate::FOLD_OWNER_CRATES,
            _ => &[],
        }
    }

    /// The rule id whose `audit:allow(...)` marker masks a leaf of this
    /// effect (a justified leaf must not propagate either).
    pub fn allow_rule_id(self) -> Option<&'static str> {
        match self {
            Effect::SpawnsThread => Some("raw-thread"),
            Effect::ReadsTime => Some("raw-instant"),
            Effect::ReadsEnv => Some("env-read"),
            Effect::Panics => Some("panicking"),
            Effect::Allocates => Some("hot-alloc"),
            Effect::UnorderedFpFold => Some("unordered-reduce"),
            _ => None,
        }
    }
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of effects, as a bitmask over [`Effect::ALL`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct EffectSet(u16);

impl EffectSet {
    pub const EMPTY: EffectSet = EffectSet(0);

    pub fn of(effects: &[Effect]) -> EffectSet {
        let mut s = EffectSet::EMPTY;
        for &e in effects {
            s.insert(e);
        }
        s
    }

    pub fn insert(&mut self, e: Effect) {
        self.0 |= e.bit();
    }

    pub fn contains(self, e: Effect) -> bool {
        self.0 & e.bit() != 0
    }

    pub fn union_with(&mut self, other: EffectSet) {
        self.0 |= other.0;
    }

    pub fn intersects(self, other: EffectSet) -> bool {
        self.0 & other.0 != 0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    pub fn iter(self) -> impl Iterator<Item = Effect> {
        Effect::ALL.into_iter().filter(move |e| self.contains(*e))
    }

    /// Canonical comma-joined names, e.g. `"reads-env, allocates"`.
    pub fn names(self) -> String {
        let mut out = String::new();
        for e in self.iter() {
            if !out.is_empty() {
                out.push_str(", ");
            }
            out.push_str(e.name());
        }
        out
    }
}

/// One leaf site: a token exercising an effect directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Leaf {
    pub effect: Effect,
    /// Anchor token index.
    pub tok: usize,
    pub line: usize,
    /// Short description for messages/chains, e.g. "`std::thread::spawn`".
    pub what: String,
}

const ENV_READS: &[&str] = &["var", "var_os", "vars", "vars_os"];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const ALLOC_MACROS: &[&str] = &["vec", "format"];
const IO_MACROS: &[&str] = &["print", "println", "eprint", "eprintln", "dbg"];

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
/// Method tails that allocate their result. `.clone()` and `.push()` are
/// deliberately absent: cloning a Copy scalar or pushing into a pre-reserved
/// buffer is the *fix* for hot-loop allocation, and flagging them would bury
/// the real constructors.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_string", "to_owned", "collect", "concat", "repeat"];

/// Allocation constructors matched as (possibly alias-resolved) paths.
const ALLOC_PATHS: &[&str] = &[
    "std::vec::Vec::new",
    "std::vec::Vec::with_capacity",
    "std::string::String::new",
    "std::string::String::from",
    "std::string::String::with_capacity",
    "std::boxed::Box::new",
    "std::collections::BTreeMap::new",
    "std::collections::BTreeSet::new",
    "std::collections::HashMap::new",
    "std::collections::HashMap::with_capacity",
    "std::collections::HashSet::new",
    "std::collections::VecDeque::new",
    "std::collections::VecDeque::with_capacity",
    "std::collections::BinaryHeap::new",
];

const TIME_PATHS: &[&str] = &["std::time::Instant::now", "std::time::SystemTime::now"];

/// Scan a file for effect leaves. Test code is skipped structurally. The
/// result is in token order; callers slice it per function via `tok`.
pub fn leaf_effects(tokens: &[Token], tree: &ItemTree, scopes: &ScopeTable) -> Vec<Leaf> {
    let mut out = Vec::new();
    let text = |i: usize| tokens.get(i).map_or("", |t: &Token| t.text.as_str());
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident || tree.in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        let name = tok.text.as_str();
        let push = |out: &mut Vec<Leaf>, effect: Effect, what: String| {
            out.push(Leaf { effect, tok: i, line: tok.line, what });
        };

        // Macro invocations: `name!(...)`.
        if text(i + 1) == "!" {
            if PANIC_MACROS.contains(&name) {
                push(&mut out, Effect::Panics, format!("`{name}!`"));
            } else if ALLOC_MACROS.contains(&name) {
                push(&mut out, Effect::Allocates, format!("`{name}!` allocation"));
            } else if IO_MACROS.contains(&name) {
                push(&mut out, Effect::Io, format!("`{name}!`"));
            }
            continue;
        }

        // Method calls: `.name(...)`.
        if i > 0 && text(i - 1) == "." && is_called(tokens, i) {
            if PANIC_METHODS.contains(&name) {
                push(&mut out, Effect::Panics, format!("`.{name}()`"));
            } else if ALLOC_METHODS.contains(&name) {
                push(&mut out, Effect::Allocates, format!("`.{name}()` allocation"));
            }
            continue;
        }

        // Path-shaped calls: `name(...)` where the (alias-resolved) path
        // denotes a known std entry point. `path_is` rejects method receivers
        // and requires ≥2 written segments for unresolved paths, so a local
        // `fn var()` or `fn spawn()` does not match — while a renamed import
        // (`use std::thread::spawn as sp`) resolves and does.
        if !is_called(tokens, i) || (i > 0 && text(i - 1) == ".") {
            continue;
        }
        if path_is(scopes, tokens, tree, i, "std::thread::spawn", 2) {
            push(&mut out, Effect::SpawnsThread, "`std::thread::spawn`".to_string());
            continue;
        }
        if TIME_PATHS.iter().any(|p| path_is(scopes, tokens, tree, i, p, 2)) {
            push(&mut out, Effect::ReadsTime, "`Instant::now`".to_string());
            continue;
        }
        if ENV_READS.contains(&name)
            && path_is(scopes, tokens, tree, i, &format!("std::env::{name}"), 2)
        {
            push(&mut out, Effect::ReadsEnv, format!("`std::env::{name}`"));
            continue;
        }
        if let Some(p) = ALLOC_PATHS
            .iter()
            .find(|p| path_is(scopes, tokens, tree, i, p, 2))
        {
            let short = p.rsplit("::").take(2).collect::<Vec<_>>();
            push(
                &mut out,
                Effect::Allocates,
                format!("`{}::{}` allocation", short[1], short[0]),
            );
            continue;
        }
        // std::fs / std::io entry points, resolved or written with a std head.
        let r = scopes.resolve_at(tokens, tree, i);
        if (r.resolved || r.path.starts_with("std::"))
            && (r.path.starts_with("std::fs::") || r.path.starts_with("std::io::"))
        {
            push(&mut out, Effect::Io, format!("`{}`", r.path));
        }
    }
    out
}

/// True when the identifier at `i` is syntactically invoked: followed by `(`,
/// or by a `::<...>` turbofish then `(`.
pub fn is_called(tokens: &[Token], i: usize) -> bool {
    let text = |j: usize| tokens.get(j).map_or("", |t: &Token| t.text.as_str());
    if text(i + 1) == "(" {
        return true;
    }
    if text(i + 1) == "::" && text(i + 2) == "<" {
        let mut j = i + 3;
        let mut angle = 1i32;
        while j < tokens.len() && angle > 0 {
            match text(j) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                ";" | "{" => return false,
                _ => {}
            }
            j += 1;
        }
        return text(j) == "(";
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::ItemTree;
    use crate::tokenizer::tokenize;

    fn leaves(src: &str) -> Vec<(Effect, usize, String)> {
        let lexed = tokenize(src);
        let tree = ItemTree::build(&lexed.tokens);
        let scopes = ScopeTable::build(&lexed.tokens, &tree);
        leaf_effects(&lexed.tokens, &tree, &scopes)
            .into_iter()
            .map(|l| (l.effect, l.line, l.what))
            .collect()
    }

    #[test]
    fn effect_set_bit_ops() {
        let mut s = EffectSet::EMPTY;
        assert!(s.is_empty());
        s.insert(Effect::ReadsEnv);
        s.insert(Effect::Allocates);
        assert!(s.contains(Effect::ReadsEnv));
        assert!(!s.contains(Effect::Io));
        assert_eq!(s.names(), "reads-env, allocates");
        let mut t = EffectSet::of(&[Effect::Io]);
        t.union_with(s);
        assert!(t.contains(Effect::ReadsEnv) && t.contains(Effect::Io));
        assert!(t.intersects(EffectSet::of(&[Effect::Io, Effect::Panics])));
        assert!(!s.intersects(EffectSet::of(&[Effect::Panics])));
    }

    #[test]
    fn recognizes_macro_and_method_leaves() {
        let src = "fn f(v: Option<u8>) -> u8 {\n\
                       let s = vec![1u8];\n\
                       println!(\"x\");\n\
                       s.to_vec();\n\
                       v.unwrap()\n\
                   }\n";
        let got = leaves(src);
        let effects: Vec<Effect> = got.iter().map(|(e, _, _)| *e).collect();
        assert_eq!(
            effects,
            vec![Effect::Allocates, Effect::Io, Effect::Allocates, Effect::Panics],
            "{got:?}"
        );
    }

    #[test]
    fn recognizes_path_leaves_through_aliases() {
        let src = "use std::{env as e, thread::spawn as sp};\n\
                   use std::time::Instant as Clock;\n\
                   fn f() {\n\
                       sp(|| {});\n\
                       let t = Clock::now();\n\
                       let v = e::var(\"X\");\n\
                       let m = std::collections::BTreeMap::new();\n\
                   }\n";
        let got = leaves(src);
        let effects: Vec<(Effect, usize)> = got.iter().map(|(e, l, _)| (*e, *l)).collect();
        assert_eq!(
            effects,
            vec![
                (Effect::SpawnsThread, 4),
                (Effect::ReadsTime, 5),
                (Effect::ReadsEnv, 6),
                (Effect::Allocates, 7),
            ],
            "{got:?}"
        );
    }

    #[test]
    fn use_declarations_and_locals_are_not_leaves() {
        // Tokens inside a `use` declaration are never "called"; local fns
        // named like std entry points need ≥2 path segments to match.
        let src = "use std::{env, thread};\n\
                   fn var(x: u8) {}\n\
                   fn f() { var(3); }\n";
        assert!(leaves(src).is_empty(), "{:?}", leaves(src));
    }

    #[test]
    fn io_paths_and_turbofish() {
        let src = "use std::fs;\n\
                   fn f(xs: &[u64]) -> Vec<u64> {\n\
                       let _s = fs::read_to_string(\"p\");\n\
                       xs.iter().copied().collect::<Vec<u64>>()\n\
                   }\n";
        let got = leaves(src);
        assert!(
            got.iter().any(|(e, l, _)| *e == Effect::Io && *l == 3),
            "{got:?}"
        );
        assert!(
            got.iter().any(|(e, l, _)| *e == Effect::Allocates && *l == 4),
            "{got:?}"
        );
    }

    #[test]
    fn test_code_has_no_leaves() {
        let src = "#[cfg(test)]\nmod t { fn f() { panic!(\"x\"); } }\n";
        assert!(leaves(src).is_empty());
    }
}
