//! Statement-level def-use chains and value provenance.
//!
//! The fourth analysis layer, built on the [`crate::syntax`] statement spans
//! and scope tree. Where the effect engine answers "what can this *function*
//! do", this module answers "where does this *value* come from": every `fn`
//! body is lowered to an ordered list of definitions ([`Def`] — `let`
//! bindings and plain reassignments, with initializer token ranges and type
//! annotations), and a small fixpoint ([`propagate`]) pushes provenance
//! through the chain:
//!
//! - **rebinds** — `let ys = xs;`, `let ys = &xs;`, `ys = xs.clone();`
//! - **projections** — `let tail = &xs[1..];`, `let f = s.field;` (any
//!   mention of a tainted name in the initializer propagates, *except* a
//!   pure scalar index `xs[i]`, which extracts one element and drops
//!   sequence-level provenance)
//! - **closure captures** — closure bodies are part of the enclosing fn's
//!   token range, so mentions inside them participate like any other use.
//!
//! The lattice is deliberately flat: a name is either untainted or carries a
//! provenance chain ([`Hop`] list, origin last). Chains are first-writer-wins
//! inside the fixpoint, which makes them deterministic (defs are visited in
//! token order) and shortest-first. The engine is flow-insensitive across
//! loop back-edges — a name rebound *after* a sink keeps its taint — which is
//! the conservative direction for a determinism gate.
//!
//! Consumers: `unordered-reduce` v3 (folds over values that flow from
//! `par_map_collect`/`par_map_reduce`), `swallowed-result` v2 (Result-shaped
//! bindings with no subsequent use, via [`result_shaped`]), and
//! `par-capture-race` v1 ([`par_calls`] + [`split_args`] locate the closures
//! handed to the deterministic runtime; the rule layer inspects their
//! captures against the enclosing [`FnFlow`]).

use crate::syntax::ItemTree;
use crate::tokenizer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// One definition inside a function body: a `let` binding or a plain
/// top-level reassignment (`name = expr;`, `name += expr;`).
#[derive(Debug)]
pub struct Def {
    pub name: String,
    /// Token index of the bound name.
    pub name_tok: usize,
    /// 1-indexed source line of the bound name.
    pub line: usize,
    /// Token range `[lo, hi)` of the initializer / assigned expression.
    pub rhs: (usize, usize),
    /// Token range `[lo, hi)` of an explicit `: Type` annotation, if any.
    pub ty: Option<(usize, usize)>,
    /// Token index just past the statement's terminating `;`.
    pub stmt_end: usize,
    /// True for `let` bindings; false for reassignments.
    pub is_let: bool,
}

/// One function parameter with its type annotation range.
#[derive(Debug)]
pub struct Param {
    pub name: String,
    pub name_tok: usize,
    pub line: usize,
    /// Token range `[lo, hi)` of the declared type (empty for `self`).
    pub ty: (usize, usize),
}

/// Def-use view of one `fn` scope: parameters and ordered definitions.
#[derive(Debug)]
pub struct FnFlow {
    pub fid: u32,
    /// Token range `[lo, hi)` of the fn body between its braces.
    pub body: (usize, usize),
    pub params: Vec<Param>,
    pub defs: Vec<Def>,
}

/// One hop of a provenance chain: "this line is where the value passed
/// through". Chains run from the nearest rebinding down to the origin.
#[derive(Debug, Clone)]
pub struct Hop {
    pub line: usize,
    pub note: String,
}

/// Lower fn `fid` to its def-use skeleton.
pub fn fn_flow(tokens: &[Token], tree: &ItemTree, fid: u32) -> FnFlow {
    let scope = &tree.scopes[fid as usize];
    let mut flow = FnFlow {
        fid,
        body: scope.body,
        params: collect_params(tokens, scope.range.0, scope.body.0),
        defs: Vec::new(),
    };
    let (lo, hi) = scope.body;
    let mut i = lo;
    while i < hi {
        if tree.enclosing_fn(i) != Some(fid) {
            i += 1; // a nested fn item's body is its own flow
            continue;
        }
        let text = tokens[i].text.as_str();
        // `let [mut] name [: Ty] = rhs ;` — simple ident patterns only;
        // destructuring (`let (a, b) = …`) stays out of the def list.
        if text == "let" && tokens[i].kind == TokenKind::Ident {
            let mut n = i + 1;
            if txt(tokens, n) == "mut" {
                n += 1;
            }
            if is_ident(tokens, n) {
                let end = stmt_end(tokens, i, hi);
                let mut eq = n + 1;
                let ty = if txt(tokens, eq) == ":" {
                    let ty_lo = eq + 1;
                    while eq < end && txt(tokens, eq) != "=" {
                        eq += 1;
                    }
                    Some((ty_lo, eq))
                } else {
                    None
                };
                if txt(tokens, eq) == "=" {
                    flow.defs.push(Def {
                        name: tokens[n].text.clone(),
                        name_tok: n,
                        line: tokens[n].line,
                        rhs: (eq + 1, end.saturating_sub(1).max(eq + 1)),
                        ty,
                        stmt_end: end,
                        is_let: true,
                    });
                }
                i = end;
                continue;
            }
        }
        // `name = rhs ;` / `name += rhs ;` at the start of a statement —
        // a reassignment keeps provenance flowing through loop bodies.
        if tokens[i].kind == TokenKind::Ident
            && starts_stmt(tree, i)
            && !matches!(txt(tokens, i.wrapping_sub(1)), "let" | "mut" | "." | "::")
        {
            let (is_assign, eq) = assign_op_after(tokens, i);
            if is_assign {
                let end = stmt_end(tokens, i, hi);
                flow.defs.push(Def {
                    name: tokens[i].text.clone(),
                    name_tok: i,
                    line: tokens[i].line,
                    rhs: (eq + 1, end.saturating_sub(1).max(eq + 1)),
                    ty: None,
                    stmt_end: end,
                    is_let: false,
                });
                i = end;
                continue;
            }
        }
        i += 1;
    }
    flow
}

impl FnFlow {
    /// First use of `name` at or after token `from` (an ident mention that is
    /// not a field/method position), or `None`.
    pub fn use_after(&self, tokens: &[Token], name: &str, from: usize) -> Option<usize> {
        (from..self.body.1).find(|&k| {
            is_ident(tokens, k)
                && tokens[k].text == name
                && txt(tokens, k.wrapping_sub(1)) != "."
                && txt(tokens, k + 1) != ":"
        })
    }

    /// Line of the first `let` of `name` (its definition site), if any.
    pub fn def_line(&self, name: &str) -> Option<usize> {
        self.defs
            .iter()
            .find(|d| d.is_let && d.name == name)
            .map(|d| d.line)
    }
}

/// Push provenance through the def list to a fixpoint. `seed` classifies a
/// single token as an origin (returning its human description); any def whose
/// initializer contains a seed token becomes tainted, and taint then flows
/// through rebinds/projections per the module rules. Returns name → chain
/// (nearest hop first, origin last).
pub fn propagate(
    flow: &FnFlow,
    tokens: &[Token],
    seed: impl Fn(usize) -> Option<String>,
) -> BTreeMap<String, Vec<Hop>> {
    let mut tainted: BTreeMap<String, Vec<Hop>> = BTreeMap::new();
    // One pass handles straight-line code; the +1 re-runs catch taint that
    // flows backwards through loop reassignments. Bounded, so pathological
    // files cannot hang the gate.
    for _ in 0..flow.defs.len().min(8) + 1 {
        let mut changed = false;
        for def in &flow.defs {
            if tainted.contains_key(&def.name) {
                continue;
            }
            let origin = (def.rhs.0..def.rhs.1).find_map(|k| seed(k).map(|d| (k, d)));
            if let Some((_, desc)) = origin {
                tainted.insert(
                    def.name.clone(),
                    vec![Hop {
                        line: def.line,
                        note: format!("`{}` bound from {} here", def.name, desc),
                    }],
                );
                changed = true;
                continue;
            }
            let via = mentions(tokens, def.rhs, &tainted)
                .into_iter()
                .find(|&(k, _)| !scalar_index_only(tokens, k, def.rhs.1));
            if let Some((_, src)) = via {
                let mut chain = vec![Hop {
                    line: def.line,
                    note: format!("`{}` flows from `{src}` here", def.name),
                }];
                chain.extend(tainted[&src].iter().cloned());
                tainted.insert(def.name.clone(), chain);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    tainted
}

/// Result-provenance, flow-sensitively per def: a forward pass classifying
/// each `let` as Result-shaped or not. Seeds: an explicit `: Result<…>`
/// annotation, a parameter of Result type, an initializer whose outermost
/// call resolves to a same-file `-> Result` fn (`result_fns`: name → decl
/// line) or an `Ok(…)`/`Err(…)` constructor, or a plain rebinding of an
/// already-shaped name. An initializer that unwraps (`?` at top level) or
/// ends in a consuming adapter (`.ok()`, `.unwrap_or(…)`, …) is *not*
/// shaped. Returns, per def index, the provenance chain when shaped.
pub fn result_shaped(
    flow: &FnFlow,
    tokens: &[Token],
    result_fns: &BTreeMap<String, usize>,
) -> Vec<Option<Vec<Hop>>> {
    let mut shaped: BTreeMap<String, Vec<Hop>> = BTreeMap::new();
    for p in &flow.params {
        if range_has_result_ty(tokens, p.ty) {
            shaped.insert(
                p.name.clone(),
                vec![Hop {
                    line: p.line,
                    note: format!("`{}` is a `Result` parameter", p.name),
                }],
            );
        }
    }
    let mut out = Vec::with_capacity(flow.defs.len());
    for def in &flow.defs {
        let chain = classify_result(def, tokens, result_fns, &shaped);
        match (&chain, def.is_let) {
            // A reassignment to a non-Result expression clears the shape.
            (None, false) | (None, true) => {
                shaped.remove(&def.name);
            }
            (Some(c), _) => {
                shaped.insert(def.name.clone(), c.clone());
            }
        }
        out.push(chain);
    }
    out
}

fn classify_result(
    def: &Def,
    tokens: &[Token],
    result_fns: &BTreeMap<String, usize>,
    shaped: &BTreeMap<String, Vec<Hop>>,
) -> Option<Vec<Hop>> {
    if let Some(ty) = def.ty {
        if range_has_result_ty(tokens, ty) {
            return Some(vec![Hop {
                line: def.line,
                note: format!("`{}` declared `: Result<…>` here", def.name),
            }]);
        }
    }
    let (lo, hi) = def.rhs;
    // `?` at top level unwraps the Ok value — no longer a Result.
    let mut depth = 0i32;
    let mut last_call: Option<usize> = None;
    for k in lo..hi {
        match txt(tokens, k) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "?" if depth == 0 => return None,
            _ => {
                if depth == 0 && is_ident(tokens, k) && txt(tokens, k + 1) == "(" {
                    last_call = Some(k);
                }
            }
        }
    }
    if let Some(m) = last_call {
        let name = tokens[m].text.as_str();
        if RESULT_CONSUMERS.contains(&name) && txt(tokens, m.wrapping_sub(1)) == "." {
            return None;
        }
        if matches!(name, "Ok" | "Err") {
            return Some(vec![Hop {
                line: def.line,
                note: format!("`{}` bound from a `{name}(…)` constructor here", def.name),
            }]);
        }
        if let Some(&decl_line) = result_fns.get(name) {
            return Some(vec![
                Hop {
                    line: def.line,
                    note: format!("`{}` bound from fallible `{name}(…)` here", def.name),
                },
                Hop {
                    line: decl_line,
                    note: format!("`{name}` declared `-> Result<…>` here"),
                },
            ]);
        }
    }
    // Plain rebinding (`let b = a;` / `let b = &a;`) of a shaped name.
    let mut k = lo;
    while k < hi && matches!(txt(tokens, k), "&" | "mut") {
        k += 1;
    }
    if k + 1 >= hi && is_ident(tokens, k) {
        if let Some(chain) = shaped.get(tokens[k].text.as_str()) {
            let mut c = vec![Hop {
                line: def.line,
                note: format!("`{}` rebinds `{}` here", def.name, tokens[k].text),
            }];
            c.extend(chain.iter().cloned());
            return Some(c);
        }
    }
    None
}

/// Adapters that consume a Result (the binding they produce is not one).
const RESULT_CONSUMERS: &[&str] = &[
    "ok",
    "err",
    "is_ok",
    "is_err",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "map_or",
    "map_or_else",
];

/// True when a type-annotation token range names a Result (std `Result`,
/// or a crate alias like `SdpResult` — by convention they end in "Result").
fn range_has_result_ty(tokens: &[Token], (lo, hi): (usize, usize)) -> bool {
    (lo..hi).any(|k| {
        is_ident(tokens, k)
            && tokens[k].text.ends_with("Result")
            && txt(tokens, k.wrapping_sub(1)) != "."
    })
}

/// Same-file fns whose header declares `-> Result`-shaped returns:
/// name → 1-indexed declaration line.
pub fn result_fns(tokens: &[Token], tree: &ItemTree) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for scope in &tree.scopes {
        if scope.kind != crate::syntax::ScopeKind::Fn {
            continue;
        }
        let (lo, hi) = (scope.range.0, scope.body.0);
        let arrow = (lo..hi).find(|&k| txt(tokens, k) == "->");
        if let Some(a) = arrow {
            if range_has_result_ty(tokens, (a + 1, hi)) {
                out.insert(scope.name.clone(), tokens[lo].line);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// `snbc_par` call-site geometry (for the capture-race rule).

/// `snbc_par` entry points that accept callables.
pub const PAR_ENTRY_POINTS: &[&str] = &[
    "par_map_collect",
    "par_map_reduce",
    "par_for_chunks",
    "par_for_chunks_scratch",
    "join",
    "join3",
];

/// One call to an `snbc_par` entry point inside a fn body.
#[derive(Debug)]
pub struct ParCall {
    /// Token index of the entry-point identifier.
    pub tok: usize,
    pub line: usize,
    /// Entry-point name (`par_map_collect`, …).
    pub name: String,
    /// Argument token ranges `[lo, hi)`, split at top-level commas.
    pub args: Vec<(usize, usize)>,
}

/// Locate free calls to [`PAR_ENTRY_POINTS`] in `[lo, hi)`. `accept` is the
/// alias-resolution predicate (token index, canonical `snbc_par::…` path) —
/// the rule layer closes over its `ScopeTable`.
pub fn par_calls(
    tokens: &[Token],
    (lo, hi): (usize, usize),
    accept: impl Fn(usize, &str) -> bool,
) -> Vec<ParCall> {
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi {
        let name = txt(tokens, i);
        if is_ident(tokens, i)
            && PAR_ENTRY_POINTS.contains(&name)
            && txt(tokens, i.wrapping_sub(1)) != "."
            && accept(i, &format!("snbc_par::{name}"))
        {
            // Past an optional turbofish to the opening paren.
            let mut open = i + 1;
            if txt(tokens, open) == "::" && txt(tokens, open + 1) == "<" {
                open += 2;
                let mut angle = 1i32;
                while open < hi && angle > 0 {
                    match txt(tokens, open) {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        _ => {}
                    }
                    open += 1;
                }
            }
            if txt(tokens, open) == "(" {
                let close = match_paren(tokens, open, hi);
                out.push(ParCall {
                    tok: i,
                    line: tokens[i].line,
                    name: name.to_string(),
                    args: split_args(tokens, open, close),
                });
                i = open;
            }
        }
        i += 1;
    }
    out
}

/// Split `( … )` contents at top-level commas into argument ranges.
/// Closure pipes (`|a, b|`) shield their parameter commas.
pub fn split_args(tokens: &[Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_pipes = false;
    let mut start = open + 1;
    for k in open + 1..close {
        match txt(tokens, k) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "|" if depth == 0 => in_pipes = !in_pipes,
            "||" if depth == 0 => {} // zero-arg closure head
            "," if depth == 0 && !in_pipes => {
                if start < k {
                    out.push((start, k));
                }
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < close {
        out.push((start, close));
    }
    out
}

/// For a closure argument range, split it into (param names, body range).
/// Returns `None` when the range is not a closure (a bare fn path).
pub fn closure_parts(
    tokens: &[Token],
    (lo, hi): (usize, usize),
) -> Option<(BTreeSet<String>, (usize, usize))> {
    let mut k = lo;
    while k < hi && matches!(txt(tokens, k), "move" | "&" | "mut") {
        k += 1;
    }
    if txt(tokens, k) == "||" {
        return Some((BTreeSet::new(), (k + 1, hi)));
    }
    if txt(tokens, k) != "|" {
        return None;
    }
    let mut params = BTreeSet::new();
    let mut j = k + 1;
    let mut depth = 0i32;
    while j < hi {
        match txt(tokens, j) {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            "|" if depth == 0 => break,
            _ => {
                // Parameter names are idents not in type position.
                if depth == 0
                    && is_ident(tokens, j)
                    && !matches!(txt(tokens, j.wrapping_sub(1)), ":" | "::")
                    && txt(tokens, j) != "mut"
                {
                    params.insert(tokens[j].text.clone());
                }
            }
        }
        j += 1;
    }
    if j >= hi {
        return None;
    }
    Some((params, (j + 1, hi)))
}

/// Names bound by `let` statements inside a token range (closure locals).
pub fn local_lets(tokens: &[Token], (lo, hi): (usize, usize)) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for k in lo..hi {
        if txt(tokens, k) == "let" && is_ident(tokens, k) {
            let mut n = k + 1;
            if txt(tokens, n) == "mut" {
                n += 1;
            }
            if is_ident(tokens, n) {
                out.insert(tokens[n].text.clone());
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Shared token helpers.

fn txt(tokens: &[Token], i: usize) -> &str {
    tokens.get(i).map_or("", |t| t.text.as_str())
}

fn is_ident(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == TokenKind::Ident)
}

/// Mentions of tainted names inside a token range, in token order: ident
/// tokens that are variable uses (not field/method names, not path segments,
/// not struct-literal field labels).
fn mentions(
    tokens: &[Token],
    (lo, hi): (usize, usize),
    tainted: &BTreeMap<String, Vec<Hop>>,
) -> Vec<(usize, String)> {
    (lo..hi)
        .filter(|&k| {
            is_ident(tokens, k)
                && tainted.contains_key(tokens[k].text.as_str())
                && !matches!(txt(tokens, k.wrapping_sub(1)), "." | "::")
                && txt(tokens, k + 1) != ":"
                && txt(tokens, k + 1) != "::"
        })
        .map(|k| (k, tokens[k].text.clone()))
        .collect()
}

/// True when the mention at `k` is a pure scalar index (`xs[i]` with no `..`
/// inside the brackets) — element extraction, which drops sequence taint.
fn scalar_index_only(tokens: &[Token], k: usize, hi: usize) -> bool {
    if txt(tokens, k + 1) != "[" {
        return false;
    }
    let close = match_bracket(tokens, k + 1, hi);
    !(k + 2..close).any(|j| txt(tokens, j) == "..")
}

/// True when token `i` opens its statement (no earlier token shares its
/// statement id).
fn starts_stmt(tree: &ItemTree, i: usize) -> bool {
    match tree.stmt_of.get(i) {
        Some(&sid) if sid != crate::syntax::NO_STMT => {
            i == 0 || tree.stmt_of.get(i - 1) != Some(&sid)
        }
        _ => false,
    }
}

/// For an ident at `i`, detect `name = …` / `name op= …`; returns the index
/// of the `=` token. (`+=` lexes as `+` `=`; `==`, `<=`, `=>` are single
/// tokens, so a bare `=` is always assignment.)
fn assign_op_after(tokens: &[Token], i: usize) -> (bool, usize) {
    if txt(tokens, i + 1) == "=" {
        return (true, i + 1);
    }
    if matches!(txt(tokens, i + 1), "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" | "<<" | ">>")
        && txt(tokens, i + 2) == "="
    {
        return (true, i + 2);
    }
    (false, 0)
}

/// Extent of a statement starting at `i`: past its `;` at zero bracket depth.
fn stmt_end(tokens: &[Token], i: usize, hi: usize) -> usize {
    let (mut p, mut b, mut k) = (0i32, 0i32, 0i32);
    let mut j = i;
    while j < hi {
        match tokens[j].text.as_str() {
            "(" => p += 1,
            ")" => p -= 1,
            "[" => k += 1,
            "]" => k -= 1,
            "{" => b += 1,
            "}" => b -= 1,
            ";" if p == 0 && b == 0 && k == 0 => return j + 1,
            _ => {}
        }
        if p < 0 || b < 0 || k < 0 {
            return j;
        }
        j += 1;
    }
    hi
}

fn match_paren(tokens: &[Token], i: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < hi {
        match tokens[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    hi
}

fn match_bracket(tokens: &[Token], i: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < hi {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    hi
}

/// Parameters of a fn header `[lo, hi)`: split the paren list at top-level
/// commas; each segment is `[mut] name: Type`.
fn collect_params(tokens: &[Token], lo: usize, hi: usize) -> Vec<Param> {
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi && txt(tokens, i) != "(" {
        i += 1;
    }
    if i >= hi {
        return out;
    }
    let close = match_paren(tokens, i, hi);
    let mut seg_start = i + 1;
    let mut depth = 0i32;
    for j in i + 1..=close.min(hi.saturating_sub(1)) {
        let t = txt(tokens, j);
        let at_end = j == close;
        if matches!(t, "(" | "[" | "<") {
            depth += 1;
        } else if matches!(t, ")" | "]" | ">") && !at_end {
            depth -= 1;
        }
        if at_end || (t == "," && depth == 0) {
            let name_tok = (seg_start..j)
                .find(|&k| is_ident(tokens, k) && !matches!(txt(tokens, k), "mut" | "self"));
            if let Some(n) = name_tok {
                let colon = (n..j).find(|&k| txt(tokens, k) == ":");
                out.push(Param {
                    name: tokens[n].text.clone(),
                    name_tok: n,
                    line: tokens[n].line,
                    ty: colon.map_or((j, j), |c| (c + 1, j)),
                });
            }
            seg_start = j + 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::ItemTree;
    use crate::tokenizer::tokenize;

    fn flow_of(src: &str) -> (Vec<Token>, ItemTree, FnFlow) {
        let lexed = tokenize(src);
        let tree = ItemTree::build(&lexed.tokens);
        let fid = (0..tree.scopes.len() as u32)
            .find(|&s| tree.scopes[s as usize].kind == crate::syntax::ScopeKind::Fn)
            .expect("fn scope");
        let flow = fn_flow(&lexed.tokens, &tree, fid);
        (lexed.tokens, tree, flow)
    }

    #[test]
    fn defs_capture_lets_and_reassignments() {
        let src = "fn f() {\n  let a = 1;\n  let mut b: f64 = 2.0;\n  b += 3.0;\n  let (x, y) = pair();\n}\n";
        let (_, _, flow) = flow_of(src);
        let names: Vec<(&str, bool)> = flow
            .defs
            .iter()
            .map(|d| (d.name.as_str(), d.is_let))
            .collect();
        // Destructuring stays out; the reassignment is tracked.
        assert_eq!(names, vec![("a", true), ("b", true), ("b", false)]);
        assert!(flow.defs[1].ty.is_some());
    }

    #[test]
    fn taint_flows_through_rebinds_not_scalar_indexing() {
        let src = "fn f(n: usize) {\n  let xs = par_map_collect(n, |i| i as f64);\n  let ys = xs;\n  let tail = &ys[1..];\n  let one = xs[0];\n}\n";
        let (tokens, _, flow) = flow_of(src);
        let tainted = propagate(&flow, &tokens, |k| {
            (tokens[k].text == "par_map_collect").then(|| "`par_map_collect(…)`".to_string())
        });
        assert!(tainted.contains_key("xs"));
        assert!(tainted.contains_key("ys"));
        assert!(tainted.contains_key("tail"), "range projection keeps taint");
        assert!(!tainted.contains_key("one"), "scalar index drops taint");
        // Chain: tail → ys → xs (origin last).
        assert_eq!(tainted["tail"].len(), 3);
        assert!(tainted["tail"][2].note.contains("par_map_collect"));
    }

    #[test]
    fn result_shape_tracks_calls_and_consumers() {
        let src = "fn helper() -> Result<u32, String> { Ok(1) }\n\
                   fn f() {\n  let a = helper();\n  let b = a;\n  let c = helper().ok();\n  let d = helper()?;\n}\n";
        let lexed = tokenize(src);
        let tree = ItemTree::build(&lexed.tokens);
        let fns = result_fns(&lexed.tokens, &tree);
        assert_eq!(fns.get("helper"), Some(&1));
        let fid = (0..tree.scopes.len() as u32)
            .find(|&s| tree.scopes[s as usize].name == "f")
            .unwrap();
        let flow = fn_flow(&lexed.tokens, &tree, fid);
        let shaped = result_shaped(&flow, &lexed.tokens, &fns);
        let by_name: BTreeMap<&str, bool> = flow
            .defs
            .iter()
            .zip(&shaped)
            .map(|(d, s)| (d.name.as_str(), s.is_some()))
            .collect();
        assert_eq!(by_name["a"], true, "direct fallible call");
        assert_eq!(by_name["b"], true, "rebinding keeps the shape");
        assert_eq!(by_name["c"], false, ".ok() consumes the Result");
        assert_eq!(by_name["d"], false, "`?` unwraps the Result");
    }

    #[test]
    fn par_call_geometry_finds_closures_and_args() {
        let src = "fn f(n: usize, out: &mut [f64]) {\n  par_for_chunks(&mut out[..], 4, |lo, chunk| {\n    let s = lo;\n    chunk[0] = s as f64;\n  });\n}\n";
        let lexed = tokenize(src);
        let tree = ItemTree::build(&lexed.tokens);
        let calls = par_calls(&lexed.tokens, (0, lexed.tokens.len()), |_, _| true);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].name, "par_for_chunks");
        assert_eq!(calls[0].args.len(), 3);
        let (params, body) = closure_parts(&lexed.tokens, calls[0].args[2]).expect("closure");
        assert!(params.contains("lo") && params.contains("chunk"));
        let locals = local_lets(&lexed.tokens, body);
        assert!(locals.contains("s"));
        let _ = tree;
    }
}
