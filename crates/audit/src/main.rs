//! `snbc-audit` binary: run the workspace audit, diff against the checked-in
//! baseline, and gate on regressions.
//!
//! ```text
//! snbc-audit [--root <dir>] [--baseline <file>] [--update-baseline] [--list]
//! ```
//!
//! Exit codes: 0 = clean vs baseline, 1 = regressions, 2 = usage/IO error.

use snbc_audit::{audit_workspace, baseline, render_findings, AuditConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("snbc-audit: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update = false;
    let mut list = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(args.next().ok_or("--root needs a value")?)),
            "--baseline" => {
                baseline_path =
                    Some(PathBuf::from(args.next().ok_or("--baseline needs a value")?))
            }
            "--update-baseline" => update = true,
            "--list" => list = true,
            "--help" | "-h" => {
                println!(
                    "snbc-audit [--root <dir>] [--baseline <file>] [--update-baseline] [--list]"
                );
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    // Default root: the workspace this binary was built from (crates/audit/../..).
    let root = match root {
        Some(r) => r,
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let root = root
        .canonicalize()
        .map_err(|e| format!("cannot resolve root: {e}"))?;
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("audit-baseline.txt"));

    let report = audit_workspace(&AuditConfig { root: root.clone() })?;
    println!(
        "snbc-audit: scanned {} source files, {} finding(s)",
        report.files_scanned,
        report.findings.len()
    );
    if list && !report.findings.is_empty() {
        print!("{}", render_findings(&report.findings));
    }

    if update {
        std::fs::write(&baseline_path, baseline::render(&report.findings))
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!("snbc-audit: baseline written to {}", baseline_path.display());
        return Ok(true);
    }

    let tolerated = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
        baseline::parse(&text)?
    } else {
        println!(
            "snbc-audit: no baseline at {} (treating all findings as regressions)",
            baseline_path.display()
        );
        baseline::BaselineMap::new()
    };

    let diff = baseline::diff(&report.findings, &tolerated);
    for (rule, file, current, allowed) in &diff.improvements {
        println!(
            "snbc-audit: improvement: [{}] {} now {} (baseline tolerates {}) — consider --update-baseline",
            rule.id(),
            file,
            current,
            allowed
        );
    }
    if diff.is_clean() {
        println!("snbc-audit: OK (no regressions vs baseline)");
        return Ok(true);
    }

    eprintln!("snbc-audit: REGRESSIONS vs {}:", baseline_path.display());
    for (rule, file, current, allowed) in &diff.regressions {
        eprintln!(
            "  [{}] {}: {} finding(s), baseline tolerates {}",
            rule.id(),
            file,
            current,
            allowed
        );
        for f in report
            .findings
            .iter()
            .filter(|f| f.rule == *rule && &f.file == file)
        {
            eprintln!("    {}:{}: {}", f.file, f.line, f.message);
        }
    }
    eprintln!(
        "snbc-audit: fix the findings, annotate `// audit:allow(<rule>)` where exactness is intended, or run with --update-baseline"
    );
    Ok(false)
}
