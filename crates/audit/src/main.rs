//! `snbc-audit` binary: run the workspace audit, diff against the checked-in
//! baseline, and gate on regressions.
//!
//! ```text
//! snbc-audit [--root <dir>] [--baseline <file>] [--update-baseline] [--list]
//!            [--format text|json|sarif] [--output <file>] [--paths <glob>[,<glob>...]]
//! snbc-audit explain <rule-id>
//! snbc-audit graph [--root <dir>] [--format json|dot] [--output <file>]
//! ```
//!
//! In `json`/`sarif` mode the document is the **only** thing written to
//! stdout (diagnostics go to stderr) and its bytes are deterministic:
//! identical across runs and across `SNBC_THREADS` values. `--output` writes
//! the document to a file instead. The gate semantics are unchanged by the
//! format.
//!
//! Exit codes: 0 = clean vs baseline, 1 = regressions, 2 = usage/IO error.

use snbc_audit::graphout::{render_graph_dot, render_graph_json};
use snbc_audit::rules::{Rule, RULES};
use snbc_audit::sarif::{render_json_report, render_sarif, Report};
use snbc_audit::{audit_workspace, baseline, render_findings, AuditConfig};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    match run() {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("snbc-audit: error: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "snbc-audit [--root <dir>] [--baseline <file>] [--update-baseline] [--list] \
                     [--format text|json|sarif] [--output <file>] \
                     [--paths <glob>[,<glob>...]] | snbc-audit explain <rule-id> \
                     | snbc-audit graph [--root <dir>] [--format json|dot] [--output <file>]";

fn run() -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update = false;
    let mut list = false;
    let mut format = Format::Text;
    let mut output: Option<PathBuf> = None;
    let mut paths: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "explain" => {
                let id = args.next().ok_or("explain needs a rule id")?;
                return explain(&id);
            }
            "graph" => return graph_dump(args),
            "--root" => root = Some(PathBuf::from(args.next().ok_or("--root needs a value")?)),
            "--baseline" => {
                baseline_path =
                    Some(PathBuf::from(args.next().ok_or("--baseline needs a value")?))
            }
            "--update-baseline" => update = true,
            "--list" => list = true,
            "--format" => {
                format = match args.next().ok_or("--format needs a value")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}` (text|json|sarif)")),
                }
            }
            "--output" => {
                output = Some(PathBuf::from(args.next().ok_or("--output needs a value")?))
            }
            // Incremental mode: report only findings whose workspace-relative
            // path matches one of the globs. Repeatable; commas also split.
            "--paths" => {
                let value = args.next().ok_or("--paths needs a value")?;
                paths.extend(
                    value
                        .split(',')
                        .map(str::trim)
                        .filter(|p| !p.is_empty())
                        .map(str::to_string),
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    // Default root: the workspace this binary was built from (crates/audit/../..).
    let root = match root {
        Some(r) => r,
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let root = root
        .canonicalize()
        .map_err(|e| format!("cannot resolve root: {e}"))?;
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("audit-baseline.txt"));

    let report = audit_workspace(&AuditConfig { root: root.clone(), paths: paths.clone() })?;

    // A filtered view must never rewrite or gate against the whole-workspace
    // baseline: the unmatched findings it cannot see would read as fixed.
    if !paths.is_empty() && update {
        return Err("--paths cannot be combined with --update-baseline".to_string());
    }

    // Diagnostics go to stdout in text mode, stderr otherwise: machine modes
    // must keep stdout byte-clean for the document.
    let diag = |msg: &str| {
        if format == Format::Text {
            println!("{msg}");
        } else {
            eprintln!("{msg}");
        }
    };

    diag(&format!(
        "snbc-audit: scanned {} source files, {} finding(s)",
        report.files_scanned,
        report.findings.len()
    ));
    if list && !report.findings.is_empty() && format == Format::Text {
        print!("{}", render_findings(&report.findings));
    }

    match format {
        Format::Text => {}
        Format::Json | Format::Sarif => {
            let doc = Report::new(report.files_scanned, report.findings.clone());
            let text = match format {
                Format::Json => render_json_report(&doc),
                _ => render_sarif(&doc),
            };
            match &output {
                Some(path) => {
                    std::fs::write(path, text.as_bytes())
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                    diag(&format!("snbc-audit: report written to {}", path.display()));
                }
                None => println!("{text}"),
            }
        }
    }

    if update {
        std::fs::write(&baseline_path, baseline::render(&report.findings))
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        diag(&format!(
            "snbc-audit: baseline written to {}",
            baseline_path.display()
        ));
        return Ok(true);
    }

    let tolerated = if baseline_path.is_file() {
        let text = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
        baseline::parse(&text)?
    } else {
        diag(&format!(
            "snbc-audit: no baseline at {} (treating all findings as regressions)",
            baseline_path.display()
        ));
        baseline::Baseline::default()
    };

    let diff = baseline::diff(&report.findings, &tolerated);
    for (rule, recorded, current) in &diff.stale {
        diag(&format!(
            "snbc-audit: baseline entries for [{}] are stale (recorded v{recorded}, rule is v{current}) — its findings count as regressions until --update-baseline",
            rule.id()
        ));
    }
    for (rule, file, current, allowed) in &diff.improvements {
        diag(&format!(
            "snbc-audit: improvement: [{}] {} now {} (baseline tolerates {}) — consider --update-baseline",
            rule.id(),
            file,
            current,
            allowed
        ));
    }
    if diff.is_clean() {
        diag("snbc-audit: OK (no regressions vs baseline)");
        return Ok(true);
    }

    eprintln!("snbc-audit: REGRESSIONS vs {}:", baseline_path.display());
    for (rule, file, current, allowed) in &diff.regressions {
        eprintln!(
            "  [{}] {}: {} finding(s), baseline tolerates {}",
            rule.id(),
            file,
            current,
            allowed
        );
        for f in report
            .findings
            .iter()
            .filter(|f| f.rule == *rule && &f.file == file)
        {
            eprintln!("    {}:{}: {}", f.file, f.line, f.message);
            for frame in f.chain.iter().skip(1) {
                eprintln!("      via {}:{}: {}", frame.file, frame.line, frame.note);
            }
        }
    }
    eprintln!(
        "snbc-audit: fix the findings, annotate `// audit:allow(<rule>)` where exactness is intended, or run with --update-baseline"
    );
    Ok(false)
}

/// `snbc-audit graph`: link the workspace call/arch graph and dump it as
/// canonical JSON (default) or Graphviz DOT. The dump bytes are deterministic
/// across runs and `SNBC_THREADS` values, like the audit reports.
fn graph_dump(mut args: impl Iterator<Item = String>) -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut dot = false;
    let mut output: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(args.next().ok_or("--root needs a value")?)),
            "--format" => {
                dot = match args.next().ok_or("--format needs a value")?.as_str() {
                    "json" => false,
                    "dot" => true,
                    other => return Err(format!("unknown graph format `{other}` (json|dot)")),
                }
            }
            "--output" => {
                output = Some(PathBuf::from(args.next().ok_or("--output needs a value")?))
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let root = root
        .canonicalize()
        .map_err(|e| format!("cannot resolve root: {e}"))?;
    let report = audit_workspace(&AuditConfig::new(root))?;
    let text = if dot {
        render_graph_dot(&report.graph)
    } else {
        render_graph_json(&report.graph)
    };
    match &output {
        Some(path) => {
            std::fs::write(path, text.as_bytes())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("snbc-audit: graph written to {}", path.display());
        }
        None => println!("{text}"),
    }
    Ok(true)
}

/// `snbc-audit explain <rule>`: print one rule's metadata, or list all rules
/// when the id is unknown.
fn explain(id: &str) -> Result<bool, String> {
    match Rule::from_id(id) {
        Some(rule) => {
            let info = rule.info();
            println!("{} (v{})", info.id, info.version);
            println!("  summary:   {}", info.summary);
            println!("  rationale: {}", info.rationale);
            println!("  fix:       {}", info.fix);
            println!("  suppress:  // audit:allow({}) on the statement (any of its lines) or the line above", info.id);
            Ok(true)
        }
        None => {
            eprintln!("snbc-audit: unknown rule `{id}`. Known rules:");
            for info in RULES {
                eprintln!("  {:18} v{}  {}", info.id, info.version, info.summary);
            }
            Err(format!("unknown rule `{id}`"))
        }
    }
}
