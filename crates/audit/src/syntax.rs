//! A brace-matched item tree over the token stream.
//!
//! The tokenizer gives a flat stream; this module recovers just enough
//! structure for scope-aware rules without a full parser:
//!
//! - a tree of **scopes** (file root → `mod` → `fn` / `impl` / `trait`), each
//!   covering a token range, with `#[cfg(test)]` / `#[test]` tracked
//!   *structurally*: an item carrying a test attribute marks its whole
//!   subtree, including nested items, instead of relying on line heuristics;
//! - a per-token map to the innermost scope, so rules can ask "which function
//!   am I in" and symbol tables can be scoped;
//! - **statement spans**: each token maps to the innermost statement
//!   (split on `;`/`,` outside parens, with `{}` blocks nested), giving
//!   suppressions a span to attach to — a `// audit:allow(...)` anywhere on a
//!   multi-line statement, or on the line above it, covers the whole
//!   statement.
//!
//! The walker is deliberately forgiving: unbalanced braces clamp to the end
//! of the file, unknown constructs stay in the enclosing scope. The audit
//! must degrade gracefully on exotic code, never crash the gate.

use crate::tokenizer::Token;

/// Sentinel for "no statement" in [`ItemTree::stmt_of`].
pub const NO_STMT: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// The file itself (crate-root or module file).
    Root,
    /// `mod name { ... }`.
    Module,
    /// `fn name(...) { ... }` — the scope covers header *and* body, so
    /// parameter lists resolve in the fn's own scope.
    Fn,
    /// `impl ... { ... }` or `trait ... { ... }`.
    Impl,
}

#[derive(Debug)]
pub struct Scope {
    pub kind: ScopeKind,
    /// Item name (`mod foo` → "foo", `fn bar` → "bar"); impls and traits are
    /// named after the target type (`impl Trait for Foo` → "Foo").
    pub name: String,
    pub parent: Option<u32>,
    /// Token index range `[start, end)` covered by the scope, header included.
    pub range: (usize, usize),
    /// Token index range `[start, end)` of the body between the braces.
    pub body: (usize, usize),
    /// True when this item (or an ancestor) carries `#[test]` / `#[cfg(test)]`.
    pub is_test: bool,
}

#[derive(Debug)]
pub struct Stmt {
    /// 1-indexed source line span of the statement, inclusive.
    pub start_line: usize,
    pub end_line: usize,
    /// Sorted, deduplicated 1-indexed lines holding this statement's *own*
    /// tokens. Tokens inside a nested `{}` block belong to inner statements,
    /// so a multi-line closure body contributes nothing here — which is what
    /// scopes `audit:allow` markers written inside a closure to the closure's
    /// own statements instead of the enclosing outer statement.
    pub lines: Vec<usize>,
}

/// The syntax layer handed to rules: scopes, test regions, statement spans.
#[derive(Debug)]
pub struct ItemTree {
    pub scopes: Vec<Scope>,
    /// Innermost scope id per token.
    pub scope_of: Vec<u32>,
    /// True when the token sits structurally inside a test item (the test
    /// attribute itself included).
    pub in_test: Vec<bool>,
    /// Innermost statement id per token ([`NO_STMT`] when outside any).
    pub stmt_of: Vec<u32>,
    pub stmts: Vec<Stmt>,
}

impl ItemTree {
    pub fn build(tokens: &[Token]) -> ItemTree {
        let mut b = Builder {
            tokens,
            scopes: vec![Scope {
                kind: ScopeKind::Root,
                name: String::new(),
                parent: None,
                range: (0, tokens.len()),
                body: (0, tokens.len()),
                is_test: false,
            }],
            scope_of: vec![0; tokens.len()],
            in_test: vec![false; tokens.len()],
        };
        b.walk(0, tokens.len(), 0, false);
        let (stmts, stmt_of) = compute_stmts(tokens);
        ItemTree {
            scopes: b.scopes,
            scope_of: b.scope_of,
            in_test: b.in_test,
            stmt_of,
            stmts,
        }
    }

    /// Innermost enclosing `fn` scope of a token, if any.
    pub fn enclosing_fn(&self, tok: usize) -> Option<u32> {
        let mut sid = *self.scope_of.get(tok)?;
        loop {
            let s = &self.scopes[sid as usize];
            if s.kind == ScopeKind::Fn {
                return Some(sid);
            }
            sid = s.parent?;
        }
    }

    /// Line span of the statement enclosing a token; falls back to the
    /// token's own line when it sits outside any statement.
    pub fn stmt_span(&self, tok: usize, fallback_line: usize) -> (usize, usize) {
        match self.stmt_of.get(tok) {
            Some(&id) if id != NO_STMT => {
                let s = &self.stmts[id as usize];
                (s.start_line, s.end_line)
            }
            _ => (fallback_line, fallback_line),
        }
    }

    /// Lines holding the tokens of the statement enclosing `tok` — the
    /// suppression anchor set. Unlike [`stmt_span`](Self::stmt_span), this
    /// excludes lines owned exclusively by nested block statements (closure
    /// bodies), so an `audit:allow` inside a closure cannot silence a finding
    /// on the enclosing statement. Falls back to the token's own line.
    pub fn stmt_lines(&self, tok: usize, fallback_line: usize) -> Vec<usize> {
        match self.stmt_of.get(tok) {
            Some(&id) if id != NO_STMT => self.stmts[id as usize].lines.clone(),
            _ => vec![fallback_line],
        }
    }
}

struct Builder<'a> {
    tokens: &'a [Token],
    scopes: Vec<Scope>,
    scope_of: Vec<u32>,
    in_test: Vec<bool>,
}

impl Builder<'_> {
    /// Assign tokens in `[lo, hi)` to scope `sid`, recursing into item bodies.
    fn walk(&mut self, lo: usize, hi: usize, sid: u32, test: bool) {
        let mut i = lo;
        let mut pending_test = false;
        let mut attr_start: Option<usize> = None;
        while i < hi {
            let text = self.tokens[i].text.as_str();
            self.scope_of[i] = sid;
            if test {
                self.in_test[i] = true;
            }
            match text {
                "#" if self.peek(i + 1) == "[" => {
                    let end = self.match_bracket(i + 1, hi);
                    for j in i..end {
                        self.scope_of[j] = sid;
                        if test {
                            self.in_test[j] = true;
                        }
                    }
                    if is_test_attr(&self.tokens[i..end]) {
                        pending_test = true;
                    }
                    if attr_start.is_none() {
                        attr_start = Some(i);
                    }
                    i = end;
                }
                // Item-header modifiers are transparent: they neither start an
                // item nor discharge a pending test attribute.
                "pub" | "unsafe" | "async" | "extern" | "default" => i += 1,
                "(" | ")" => i += 1, // `pub(crate)` visibility parens
                "mod" | "fn" | "impl" | "trait"
                    if self.item_starts_here(text, i) =>
                {
                    i = self.consume_item(text, i, hi, sid, test || pending_test, attr_start);
                    pending_test = false;
                    attr_start = None;
                }
                // A test attribute on any other item (`use`, `struct`, a
                // statement, …): mask the attribute plus the following item up
                // to its balanced `{...}` or a top-level `;`, old-style.
                _ if pending_test => {
                    let start = attr_start.unwrap_or(i);
                    let end = self.generic_item_end(i, hi);
                    for j in start..end {
                        self.in_test[j] = true;
                        self.scope_of[j] = sid;
                    }
                    pending_test = false;
                    attr_start = None;
                    i = end;
                }
                // An anonymous block (loop body, closure, match, …): stays in
                // the current scope, but walk inside for nested items.
                "{" => {
                    let close = self.match_brace(i, hi);
                    self.walk(i + 1, close, sid, test);
                    if close < hi {
                        self.scope_of[close] = sid;
                        if test {
                            self.in_test[close] = true;
                        }
                    }
                    i = close + 1;
                }
                _ => {
                    attr_start = None;
                    i += 1;
                }
            }
        }
    }

    fn peek(&self, i: usize) -> &str {
        self.tokens.get(i).map_or("", |t| t.text.as_str())
    }

    /// `fn`/`mod` must be followed by a name; `fn` in type position
    /// (`fn(f64) -> f64`) is not an item.
    fn item_starts_here(&self, kw: &str, i: usize) -> bool {
        match kw {
            "fn" | "mod" => self
                .tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == crate::tokenizer::TokenKind::Ident),
            _ => true,
        }
    }

    /// Consume an item starting at keyword index `i`; returns the index just
    /// past the item.
    fn consume_item(
        &mut self,
        kw: &str,
        i: usize,
        hi: usize,
        parent: u32,
        item_test: bool,
        attr_start: Option<usize>,
    ) -> usize {
        // Header: scan to the body `{` or a terminating `;` (declarations,
        // trait fns without bodies). Fn signatures cannot contain braces, but
        // array types (`[f64; 3]`) put semicolons inside brackets — only a
        // bracket-top-level `;` ends the header.
        let mut j = i + 1;
        let mut bracket = 0i32;
        while j < hi {
            match self.peek(j) {
                "{" => break,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                ";" if bracket == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= hi || self.peek(j) == ";" {
            let end = (j + 1).min(hi);
            for k in i..end {
                self.scope_of[k] = parent;
                if item_test {
                    self.in_test[k] = true;
                }
            }
            if item_test {
                if let Some(a) = attr_start {
                    for k in a..i {
                        self.in_test[k] = true;
                    }
                }
            }
            return end;
        }
        let close = self.match_brace(j, hi);
        let kind = match kw {
            "mod" => ScopeKind::Module,
            "fn" => ScopeKind::Fn,
            _ => ScopeKind::Impl,
        };
        let name = match kw {
            "mod" | "fn" => self.peek(i + 1).to_string(),
            // `impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo`, `trait Bar`:
            // name the scope after the *target* type so call-graph symbols
            // read `solver::SdpSolver::solve`, not `solver::impl::solve`.
            other => self.impl_target_name(i + 1, j).unwrap_or_else(|| other.to_string()),
        };
        let end = (close + 1).min(hi);
        self.scopes.push(Scope {
            kind,
            name,
            parent: Some(parent),
            range: (i, end),
            body: (j + 1, close),
            is_test: item_test,
        });
        let sid = (self.scopes.len() - 1) as u32; // audit:allow(lossy-cast) — scope ids fit u32
        for k in i..=j.min(hi - 1) {
            self.scope_of[k] = sid;
            if item_test {
                self.in_test[k] = true;
            }
        }
        if item_test {
            if let Some(a) = attr_start {
                for k in a..i {
                    self.in_test[k] = true;
                }
            }
        }
        self.walk(j + 1, close, sid, item_test);
        if close < hi {
            self.scope_of[close] = sid;
            if item_test {
                self.in_test[close] = true;
            }
        }
        end
    }

    /// Target-type name of an `impl`/`trait` header in `[lo, hi)`: the first
    /// identifier after a top-level `for` (trait impls), else the first
    /// identifier outside the `<...>` generics block.
    fn impl_target_name(&self, lo: usize, hi: usize) -> Option<String> {
        let mut angle = 0i32;
        let mut first: Option<&str> = None;
        let mut after_for = false;
        for j in lo..hi {
            let t = self.tokens.get(j)?;
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "for" if angle == 0 => {
                    after_for = true;
                    first = None;
                }
                "where" if angle == 0 => break,
                _ if angle == 0 && t.kind == crate::tokenizer::TokenKind::Ident => {
                    if first.is_none() && t.text != "dyn" {
                        first = Some(t.text.as_str());
                        if after_for {
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
        first.map(|s| s.to_string())
    }

    /// Everything up to the close of the first entered `{...}`, or a `;` at
    /// nesting level zero. Mirrors the legacy test-region heuristic.
    fn generic_item_end(&self, mut i: usize, hi: usize) -> usize {
        let mut brace = 0usize;
        let mut entered = false;
        while i < hi {
            match self.peek(i) {
                "{" => {
                    brace += 1;
                    entered = true;
                }
                "}" => {
                    brace = brace.saturating_sub(1);
                    if entered && brace == 0 {
                        return i + 1;
                    }
                }
                ";" if !entered && brace == 0 => return i + 1,
                _ => {}
            }
            i += 1;
        }
        hi
    }

    /// Index of the `}` matching the `{` at `i` (clamped to `hi` when
    /// unbalanced).
    fn match_brace(&self, i: usize, hi: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < hi {
            match self.peek(j) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        hi
    }

    /// Index just past the `]` matching the `[` at `i`.
    fn match_bracket(&self, i: usize, hi: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < hi {
            match self.peek(j) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        hi
    }
}

pub(crate) fn is_test_attr(attr: &[Token]) -> bool {
    // `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ...))]`, `#[tokio::test]`.
    let texts: Vec<&str> = attr.iter().map(|t| t.text.as_str()).collect();
    match texts.as_slice() {
        ["#", "[", "test", "]"] => true,
        ["#", "[", "cfg", "(", rest @ ..] => rest.contains(&"test"),
        _ => texts.len() >= 2 && texts[texts.len() - 2] == "test",
    }
}

/// Segment the stream into statements. Within each `{}` frame, a statement
/// ends at `;` or `,` outside parens/brackets, or after a nested block whose
/// next token does not continue the expression (`else`, `.`, `?`, operators,
/// closers). Tokens inside nested braces belong to the *inner* statements;
/// the enclosing statement still spans them via its own brace tokens.
fn compute_stmts(tokens: &[Token]) -> (Vec<Stmt>, Vec<u32>) {
    struct Frame {
        open: Option<u32>,
        pdepth: usize,
    }
    let mut stmts: Vec<Stmt> = Vec::new();
    let mut stmt_of = vec![NO_STMT; tokens.len()];
    let mut stack = vec![Frame { open: None, pdepth: 0 }];

    let mut assign = |stmts: &mut Vec<Stmt>, frame: &mut Frame, i: usize, line: usize| -> u32 {
        let id = match frame.open {
            Some(id) => id,
            None => {
                stmts.push(Stmt { start_line: line, end_line: line, lines: Vec::new() });
                let id = (stmts.len() - 1) as u32; // audit:allow(lossy-cast) — stmt ids fit u32
                frame.open = Some(id);
                id
            }
        };
        let s = &mut stmts[id as usize];
        s.end_line = s.end_line.max(line);
        s.start_line = s.start_line.min(line);
        // A statement's tokens arrive in non-decreasing line order even when
        // nested blocks interleave, so a last-element check dedups.
        if s.lines.last() != Some(&line) {
            s.lines.push(line);
        }
        stmt_of[i] = id;
        id
    };

    for (i, t) in tokens.iter().enumerate() {
        let text = t.text.as_str();
        match text {
            "{" => {
                let frame = stack.last_mut().expect("stmt stack");
                assign(&mut stmts, frame, i, t.line);
                stack.push(Frame { open: None, pdepth: 0 });
            }
            "}" => {
                if stack.len() > 1 {
                    stack.pop();
                }
                let frame = stack.last_mut().expect("stmt stack");
                assign(&mut stmts, frame, i, t.line);
                // Does the enclosing statement continue past this block?
                let cont = frame.pdepth > 0
                    || matches!(
                        tokens.get(i + 1).map(|n| n.text.as_str()),
                        Some(
                            "else" | "." | "?" | ";" | "," | ")" | "]" | "}" | "=>" | "=="
                                | "!=" | "<" | ">" | "<=" | ">=" | "+" | "-" | "*" | "/"
                                | "&&" | "||" | "&" | "|" | "as"
                        )
                    );
                if !cont {
                    frame.open = None;
                }
            }
            ";" | "," => {
                let frame = stack.last_mut().expect("stmt stack");
                if frame.pdepth == 0 {
                    assign(&mut stmts, frame, i, t.line);
                    frame.open = None;
                } else {
                    assign(&mut stmts, frame, i, t.line);
                }
            }
            _ => {
                let frame = stack.last_mut().expect("stmt stack");
                if text == "(" || text == "[" {
                    frame.pdepth += 1;
                } else if text == ")" || text == "]" {
                    frame.pdepth = frame.pdepth.saturating_sub(1);
                }
                assign(&mut stmts, frame, i, t.line);
            }
        }
    }
    (stmts, stmt_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn tree(src: &str) -> (Vec<Token>, ItemTree) {
        let lexed = tokenize(src);
        let tree = ItemTree::build(&lexed.tokens);
        (lexed.tokens, tree)
    }
    use crate::tokenizer::Token;

    fn scope_name_at(tokens: &[Token], t: &ItemTree, ident: &str) -> String {
        let i = tokens.iter().position(|tk| tk.text == ident).unwrap();
        t.scopes[t.scope_of[i] as usize].name.clone()
    }

    #[test]
    fn fn_and_mod_scopes_nest() {
        let src = "mod outer {\n  fn inner(x: f64) -> f64 { body_tok }\n}\nfn top() { other }\n";
        let (tokens, t) = tree(src);
        assert_eq!(scope_name_at(&tokens, &t, "body_tok"), "inner");
        assert_eq!(scope_name_at(&tokens, &t, "other"), "top");
        let inner = tokens.iter().position(|tk| tk.text == "body_tok").unwrap();
        let sid = t.scope_of[inner] as usize;
        assert_eq!(t.scopes[sid].kind, ScopeKind::Fn);
        let parent = t.scopes[sid].parent.unwrap() as usize;
        assert_eq!(t.scopes[parent].kind, ScopeKind::Module);
        assert_eq!(t.scopes[parent].name, "outer");
    }

    #[test]
    fn fn_params_live_in_the_fn_scope() {
        let src = "fn f(map: usize) { }";
        let (tokens, t) = tree(src);
        assert_eq!(scope_name_at(&tokens, &t, "map"), "f");
    }

    #[test]
    fn impl_blocks_and_methods() {
        let src = "impl Foo {\n  fn method(&self) { inside }\n}\n";
        let (tokens, t) = tree(src);
        assert_eq!(scope_name_at(&tokens, &t, "inside"), "method");
    }

    #[test]
    fn impl_scopes_carry_target_names() {
        let src = "impl Foo { fn m(&self) { a } }\n\
                   impl<T: Clone> Wrapper<T> { fn n(&self) { b } }\n\
                   impl std::fmt::Display for Rule { fn fmt(&self) { c } }\n\
                   trait Solver { fn solve(&self) { d } }\n";
        let (tokens, t) = tree(src);
        for (ident, want) in [("a", "Foo"), ("b", "Wrapper"), ("c", "Rule"), ("d", "Solver")] {
            let i = tokens.iter().position(|tk| tk.text == ident).unwrap();
            let sid = t.scope_of[i] as usize;
            let parent = t.scopes[sid].parent.unwrap() as usize;
            assert_eq!(t.scopes[parent].name, want, "target of scope holding `{ident}`");
        }
    }

    #[test]
    fn cfg_test_marks_whole_subtree() {
        let src = "fn lib() { a }\n#[cfg(test)]\nmod tests {\n  fn helper() { b }\n  #[test]\n  fn t() { c }\n}\nfn after() { d }\n";
        let (tokens, t) = tree(src);
        for ident in ["b", "c"] {
            let i = tokens.iter().position(|tk| tk.text == ident).unwrap();
            assert!(t.in_test[i], "{ident} should be in test region");
        }
        for ident in ["a", "d"] {
            let i = tokens.iter().position(|tk| tk.text == ident).unwrap();
            assert!(!t.in_test[i], "{ident} should be library code");
        }
    }

    #[test]
    fn test_attr_on_use_masks_to_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() { x }\n";
        let (tokens, t) = tree(src);
        let hm = tokens.iter().position(|tk| tk.text == "HashMap").unwrap();
        assert!(t.in_test[hm]);
        let x = tokens.iter().position(|tk| tk.text == "x").unwrap();
        assert!(!t.in_test[x]);
    }

    #[test]
    fn fn_pointer_type_is_not_an_item() {
        let src = "fn f(g: fn(f64) -> f64) { inner }";
        let (tokens, t) = tree(src);
        assert_eq!(scope_name_at(&tokens, &t, "inner"), "f");
        // Only root + one fn scope.
        assert_eq!(t.scopes.iter().filter(|s| s.kind == ScopeKind::Fn).count(), 1);
    }

    #[test]
    fn array_type_semicolon_does_not_end_a_fn_header() {
        // `[f64; 3]` puts a `;` inside the signature; the header scan must
        // not mistake it for a body-less declaration.
        let src = "fn f(scales: [f64; 3], out: &mut [f64; 3]) -> f64 { inner }\nfn g() { other }\n";
        let (tokens, t) = tree(src);
        assert_eq!(scope_name_at(&tokens, &t, "inner"), "f");
        assert_eq!(scope_name_at(&tokens, &t, "other"), "g");
        assert_eq!(t.scopes.iter().filter(|s| s.kind == ScopeKind::Fn).count(), 2);
    }

    #[test]
    fn multiline_statement_has_one_span() {
        let src = "fn f(v: Option<u64>) -> u64 {\n  v.map(|x| x + 1)\n    .unwrap()\n}\n";
        let (tokens, t) = tree(src);
        let unwrap = tokens.iter().position(|tk| tk.text == "unwrap").unwrap();
        let (lo, hi) = t.stmt_span(unwrap, 0);
        assert!(lo <= 2 && hi >= 3, "span was ({lo}, {hi})");
    }

    #[test]
    fn semicolons_split_statements() {
        let src = "fn f() {\n  let a = 1;\n  let b = 2;\n}\n";
        let (tokens, t) = tree(src);
        let a = tokens.iter().position(|tk| tk.text == "a").unwrap();
        let b = tokens.iter().position(|tk| tk.text == "b").unwrap();
        assert_ne!(t.stmt_of[a], t.stmt_of[b]);
        assert_eq!(t.stmt_span(a, 0), (2, 2));
        assert_eq!(t.stmt_span(b, 0), (3, 3));
    }

    #[test]
    fn call_arguments_stay_in_one_statement() {
        let src = "fn f() {\n  g(a,\n    b);\n}\n";
        let (tokens, t) = tree(src);
        let a = tokens.iter().position(|tk| tk.text == "a").unwrap();
        let b = tokens.iter().position(|tk| tk.text == "b").unwrap();
        assert_eq!(t.stmt_of[a], t.stmt_of[b]);
        assert_eq!(t.stmt_span(b, 0), (2, 3));
    }

    #[test]
    fn block_statements_split_from_followers() {
        let src = "fn f() {\n  if c { x() }\n  y();\n}\n";
        let (tokens, t) = tree(src);
        let c = tokens.iter().position(|tk| tk.text == "c").unwrap();
        let y = tokens.iter().position(|tk| tk.text == "y").unwrap();
        assert_ne!(t.stmt_of[c], t.stmt_of[y]);
    }

    #[test]
    fn stmt_lines_exclude_nested_block_bodies() {
        // The outer `let` statement owns lines 2 (head) and 5 (closing
        // tokens); lines 3–4 belong to the closure's inner statements.
        let src = "fn f(n: usize) -> Vec<u64> {\n  let xs = run(n, |i| {\n    let y = i as u64;\n    y + 1\n  });\n  xs\n}\n";
        let (tokens, t) = tree(src);
        let xs = tokens.iter().position(|tk| tk.text == "xs").unwrap();
        assert_eq!(t.stmt_lines(xs, 0), vec![2, 5]);
        let y = tokens.iter().position(|tk| tk.text == "y").unwrap();
        assert_eq!(t.stmt_lines(y, 0), vec![3]);
        // The legacy span still covers the whole construct.
        assert_eq!(t.stmt_span(xs, 0), (2, 5));
    }

    #[test]
    fn enclosing_fn_walks_through_blocks() {
        let src = "fn f() { loop { inner } }";
        let (tokens, t) = tree(src);
        let i = tokens.iter().position(|tk| tk.text == "inner").unwrap();
        let fid = t.enclosing_fn(i).unwrap();
        assert_eq!(t.scopes[fid as usize].name, "f");
    }
}
