//! Per-scope symbol tables for `use`-aliases, and path resolution.
//!
//! Rules must see through renames: `use std::collections::HashMap as Map;`
//! followed by `Map::new()` is still a `HashMap`, and
//! `use std::time::Instant as Clock; Clock::now()` is still a raw clock read.
//! This module walks the [`crate::syntax::ItemTree`], collects every `use`
//! declaration into the scope that contains it (file root, `mod`, or a `fn`
//! body — Rust allows `use` inside functions), and resolves identifier paths
//! at rule sites by rewriting the leftmost segment through the innermost
//! alias in scope.
//!
//! Resolution is deliberately conservative: a path whose head has **no**
//! alias entry is returned as written, and rules fall back to suffix
//! matching (so fixture code without imports, or fully-qualified
//! `std::time::Instant::now()`, still matches), while an alias that resolves
//! to a *different* crate's type suppresses the match.

use crate::syntax::ItemTree;
use crate::tokenizer::{Token, TokenKind};
use std::collections::BTreeMap;

/// Alias maps, one per scope id (parallel to `ItemTree::scopes`).
#[derive(Debug)]
pub struct ScopeTable {
    maps: Vec<BTreeMap<String, String>>,
}

/// Outcome of resolving the path that ends at some identifier token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedPath {
    /// Canonical path (`std::collections::HashMap`) when the head segment hit
    /// an alias; otherwise the path exactly as written.
    pub path: String,
    /// True when an alias rewrite happened (the path is authoritative).
    pub resolved: bool,
    /// Number of `::`-separated segments as written at the site.
    pub segments: usize,
}

impl ScopeTable {
    pub fn build(tokens: &[Token], tree: &ItemTree) -> ScopeTable {
        let mut maps: Vec<BTreeMap<String, String>> =
            (0..tree.scopes.len()).map(|_| BTreeMap::new()).collect();
        let mut i = 0usize;
        while i < tokens.len() {
            if tokens[i].text == "use" && tokens[i].kind == TokenKind::Ident {
                // Collect the declaration up to its `;`.
                let mut j = i + 1;
                while j < tokens.len() && tokens[j].text != ";" {
                    j += 1;
                }
                let scope = tree.scope_of[i] as usize;
                let mut cur = i + 1;
                parse_use_tree(tokens, &mut cur, j, "", &mut maps[scope]);
                i = j + 1;
            } else {
                i += 1;
            }
        }
        ScopeTable { maps }
    }

    /// Look up an alias, walking from `scope` outward to the file root.
    pub fn lookup(&self, tree: &ItemTree, scope: u32, name: &str) -> Option<&str> {
        let mut sid = scope;
        loop {
            if let Some(path) = self.maps[sid as usize].get(name) {
                return Some(path);
            }
            sid = tree.scopes[sid as usize].parent?;
        }
    }

    /// Resolve the `::`-path ending at identifier token `i` (e.g. for the
    /// `now` in `time::Instant::now`, walks back over `time::Instant` and
    /// rewrites `time` through the alias table).
    pub fn resolve_at(&self, tokens: &[Token], tree: &ItemTree, i: usize) -> ResolvedPath {
        let mut segs: Vec<&str> = vec![tokens[i].text.as_str()];
        let mut j = i;
        while j >= 2
            && tokens[j - 1].text == "::"
            && tokens[j - 2].kind == TokenKind::Ident
        {
            segs.insert(0, tokens[j - 2].text.as_str());
            j -= 2;
        }
        let segments = segs.len();
        let head = segs[0];
        let as_written = segs.join("::");
        // `std`/`core`/`crate`-rooted paths are already canonical-ish.
        if matches!(head, "std" | "core" | "alloc" | "crate" | "self" | "super") {
            return ResolvedPath { path: as_written, resolved: head == "std", segments };
        }
        let scope = tree.scope_of.get(i).copied().unwrap_or(0);
        match self.lookup(tree, scope, head) {
            Some(prefix) => {
                let mut path = prefix.to_string();
                for seg in &segs[1..] {
                    path.push_str("::");
                    path.push_str(seg);
                }
                ResolvedPath { path, resolved: true, segments }
            }
            None => ResolvedPath { path: as_written, resolved: false, segments },
        }
    }
}

/// True when the path ending at token `i` denotes `canonical` (a full
/// `std::...` path). An alias-resolved path must match exactly; an unresolved
/// path matches when it is a segment-aligned suffix of the canonical path
/// (`Instant::now`, `time::Instant::now`). `min_segments` guards bare-ident
/// sites: method calls like `.now()` or locals named `var` resolve to a
/// single unqualified segment and must not match path-shaped targets.
pub fn path_is(
    table: &ScopeTable,
    tokens: &[Token],
    tree: &ItemTree,
    i: usize,
    canonical: &str,
    min_segments: usize,
) -> bool {
    // A field access / method call is not a path.
    if i > 0 && tokens[i - 1].text == "." {
        return false;
    }
    let r = table.resolve_at(tokens, tree, i);
    if r.resolved {
        return r.path == canonical;
    }
    if r.segments < min_segments {
        return false;
    }
    canonical == r.path || canonical.ends_with(&format!("::{}", r.path))
}

/// Parse one `use`-tree element starting at `*cur`, recording
/// `(alias → canonical path)` pairs. Handles `a::b`, `a::b as c`,
/// `a::{b, c as d, self}`, and ignores globs (`a::*`).
fn parse_use_tree(
    tokens: &[Token],
    cur: &mut usize,
    end: usize,
    prefix: &str,
    out: &mut BTreeMap<String, String>,
) {
    let mut segs: Vec<String> = Vec::new();
    let full = |segs: &[String]| -> String {
        let mut p = prefix.to_string();
        for s in segs {
            if !p.is_empty() {
                p.push_str("::");
            }
            p.push_str(s);
        }
        p
    };
    while *cur < end {
        let text = tokens[*cur].text.as_str();
        match text {
            "::" => *cur += 1,
            "{" => {
                *cur += 1;
                let group_prefix = full(&segs);
                loop {
                    if *cur >= end || tokens[*cur].text == "}" {
                        *cur += 1;
                        break;
                    }
                    parse_use_tree(tokens, cur, end, &group_prefix, out);
                    if *cur < end && tokens[*cur].text == "," {
                        *cur += 1;
                    }
                }
                return;
            }
            "}" | "," => return,
            "*" => {
                // Glob imports cannot be resolved without knowing the target
                // module's contents; skip.
                *cur += 1;
                return;
            }
            "as" => {
                *cur += 1;
                if *cur < end && tokens[*cur].kind == TokenKind::Ident {
                    out.insert(tokens[*cur].text.clone(), full(&segs));
                    *cur += 1;
                }
                return;
            }
            "self" => {
                // `use a::b::{self, c}` binds `b`.
                if let Some(last) = segs.last().cloned().or_else(|| {
                    prefix.rsplit("::").next().map(str::to_string)
                }) {
                    if !last.is_empty() {
                        out.insert(last, full(&segs));
                    }
                }
                *cur += 1;
                // An `as` rename may still follow (`self as x`); loop handles.
                if *cur < end && tokens[*cur].text == "as" {
                    continue;
                }
                return;
            }
            _ if tokens[*cur].kind == TokenKind::Ident => {
                segs.push(text.to_string());
                *cur += 1;
                // End of a simple path?
                if *cur >= end
                    || matches!(tokens[*cur].text.as_str(), "," | "}")
                {
                    if let Some(last) = segs.last() {
                        out.insert(last.clone(), full(&segs));
                    }
                    return;
                }
            }
            _ => {
                *cur += 1;
            }
        }
    }
    if let Some(last) = segs.last() {
        out.insert(last.clone(), full(&segs));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn table(src: &str) -> (Vec<Token>, ItemTree, ScopeTable) {
        let lexed = tokenize(src);
        let tree = ItemTree::build(&lexed.tokens);
        let table = ScopeTable::build(&lexed.tokens, &tree);
        (lexed.tokens, tree, table)
    }

    fn resolve_ident(src: &str, ident: &str) -> ResolvedPath {
        let (tokens, tree, table) = table(src);
        let i = tokens
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| t.text == ident)
            .unwrap()
            .0;
        table.resolve_at(&tokens, &tree, i)
    }

    #[test]
    fn plain_import() {
        let r = resolve_ident(
            "use std::collections::HashMap;\nfn f() { let m = HashMap::new(); }",
            "HashMap",
        );
        // The *last* HashMap occurrence is the use site... `HashMap::new`
        // resolves at `new`; resolving the HashMap ident itself:
        assert!(r.resolved);
        assert_eq!(r.path, "std::collections::HashMap");
    }

    #[test]
    fn renamed_import() {
        let r = resolve_ident(
            "use std::collections::HashMap as Map;\nfn f() { let m = Map::new(); }",
            "Map",
        );
        assert!(r.resolved);
        assert_eq!(r.path, "std::collections::HashMap");
    }

    #[test]
    fn grouped_and_nested_imports() {
        let src = "use std::collections::{HashMap, btree_map::{BTreeMap as B}};\nfn f() { HashMap::new(); B::new(); }";
        let r = resolve_ident(src, "HashMap");
        assert_eq!(r.path, "std::collections::HashMap");
        let rb = resolve_ident(src, "B");
        assert_eq!(rb.path, "std::collections::btree_map::BTreeMap");
    }

    #[test]
    fn self_in_group_binds_parent() {
        let r = resolve_ident(
            "use std::collections::{self, HashMap};\nfn f() { collections::HashMap::new(); }",
            "collections",
        );
        assert!(r.resolved);
        assert_eq!(r.path, "std::collections");
    }

    #[test]
    fn fn_local_use_scopes_to_the_fn() {
        let src = "fn a() { use std::collections::HashMap; HashMap::new(); }\nfn b() { HashMap::new(); }";
        let (tokens, tree, table) = table(src);
        // HashMap in `b` has no alias in scope.
        let last = tokens
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| t.text == "HashMap")
            .unwrap()
            .0;
        let r = table.resolve_at(&tokens, &tree, last);
        assert!(!r.resolved);
        // HashMap use-site in `a` resolves.
        let in_a = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "HashMap")
            .nth(1)
            .unwrap()
            .0;
        let ra = table.resolve_at(&tokens, &tree, in_a);
        assert!(ra.resolved);
    }

    #[test]
    fn multi_segment_path_resolves_through_module_alias() {
        let r = resolve_ident(
            "use std::time;\nfn f() { let t = time::Instant::now(); }",
            "now",
        );
        assert!(r.resolved);
        assert_eq!(r.path, "std::time::Instant::now");
        assert_eq!(r.segments, 3);
    }

    #[test]
    fn path_is_matches_qualified_and_aliased_forms() {
        let check = |src: &str, ident: &str, want: bool| {
            let (tokens, tree, table) = table(src);
            let i = tokens
                .iter()
                .enumerate()
                .rev()
                .find(|(_, t)| t.text == ident)
                .unwrap()
                .0;
            assert_eq!(
                path_is(&table, &tokens, &tree, i, "std::time::Instant::now", 2),
                want,
                "src: {src}"
            );
        };
        check("fn f() { std::time::Instant::now(); }", "now", true);
        check("fn f() { Instant::now(); }", "now", true); // suffix fallback
        check(
            "use std::time::Instant as Clock;\nfn f() { Clock::now(); }",
            "now",
            true,
        );
        check(
            "use myclock::Instant;\nfn f() { Instant::now(); }",
            "now",
            false, // alias says it is NOT std's Instant
        );
        check("fn f(x: T) { x.now(); }", "now", false); // method call
        check("fn f() { now(); }", "now", false); // bare ident, min 2 segs
    }
}
