//! Declarative effect contracts over the linked call graph.
//!
//! Each contract names a set of functions and a set of forbidden
//! [`Effect`]s, and fires on the *boundary*: the call site (or leaf) inside
//! the governed function where the forbidden effect first enters. Findings
//! carry the full call chain down to the leaf, exported as SARIF `codeFlows`.
//!
//! Three contracts:
//!
//! - **`solver-effects`** — the solver stack ([`CONTRACT_CRATES`]) must be
//!   transitively free of env reads, raw thread spawns, and raw clock reads.
//!   Leaf violations inside the stack are already caught by the per-site
//!   rules (`env-read` / `raw-thread` / `raw-instant`); this contract adds
//!   the *transitive* half, firing on calls that leave the stack and reach a
//!   forbidden effect elsewhere.
//! - **`hot-alloc`** — `// audit:hot` functions must not allocate per
//!   iteration, directly or through resolved workspace callees. Setup
//!   allocations are justified with `audit:allow(hot-alloc)` on the site.
//!   Unresolved calls are *not* flagged (the effect lattice is a lower
//!   bound); the `unresolved-call` effect still shows in the graph dump.
//! - **`par-callee`** — callables handed to `snbc_par` entry points
//!   (closures or function paths) must be deterministic: no env reads, no
//!   clock reads, no nested raw spawns, no unordered float folds. Unresolved
//!   calls are permitted — forbidding them would outlaw every std method.

use crate::callgraph::{CallGraph, ChainStep};
use crate::effects::{Effect, EffectSet};
use crate::rules::{Finding, Frame, Rule};

/// The solver stack governed by the `solver-effects` contract: every crate
/// the verifier side of CEGIS depends on for a certificate's validity.
pub const CONTRACT_CRATES: &[&str] = &[
    "core", "interval", "linalg", "lp", "nn", "poly", "portfolio", "sdp", "sos",
];

/// Effects the solver stack must be transitively free of.
const SOLVER_FORBIDDEN: &[Effect] = &[Effect::ReadsEnv, Effect::SpawnsThread, Effect::ReadsTime];

/// Effects a parallel callee must not carry.
const PAR_FORBIDDEN: &[Effect] = &[
    Effect::ReadsEnv,
    Effect::ReadsTime,
    Effect::SpawnsThread,
    Effect::UnorderedFpFold,
];

/// Run every contract over the linked graph.
pub fn check(graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    solver_effects(graph, &mut findings);
    hot_alloc(graph, &mut findings);
    par_callee(graph, &mut findings);
    findings
}

fn to_frames(steps: Vec<ChainStep>) -> Vec<Frame> {
    steps
        .into_iter()
        .map(|s| Frame {
            file: s.file,
            line: s.line,
            note: s.note,
        })
        .collect()
}

/// Chain for a boundary edge: the call site itself, then the callee's
/// deterministic shortest path down to a leaf of `effect`.
fn edge_chain(graph: &CallGraph, from: u32, call_idx: usize, callee: u32, effect: Effect) -> Vec<Frame> {
    let node = &graph.nodes[from as usize];
    let call = &node.decl.calls[call_idx];
    let mut chain = vec![Frame {
        file: node.file.clone(),
        line: call.line,
        note: format!(
            "`{}` calls `{}`",
            node.symbol, graph.nodes[callee as usize].symbol
        ),
    }];
    chain.extend(to_frames(graph.chain_to_leaf(callee, effect)));
    chain
}

fn site_suppressed(graph: &CallGraph, node: u32, rule_id: &str, stmt_lines: &[usize], line: usize) -> bool {
    let file = &graph.nodes[node as usize].file;
    graph
        .suppressions
        .get(file)
        .is_some_and(|s| crate::callgraph::suppressed_at(s, rule_id, stmt_lines, line))
}

fn solver_effects(graph: &CallGraph, findings: &mut Vec<Finding>) {
    for (id, node) in graph.nodes.iter().enumerate() {
        if !CONTRACT_CRATES.contains(&node.crate_name.as_str()) {
            continue;
        }
        let id = id as u32; // audit:allow(lossy-cast) — node ids fit u32
        for (ci, callees) in &graph.resolved[id as usize] {
            let call = &node.decl.calls[*ci];
            for &effect in SOLVER_FORBIDDEN {
                // Boundary edge: the callee leaves the solver stack and
                // carries the effect. In-stack callees are governed at their
                // own boundary (or leaf rule), so skip them here.
                let Some(&bad) = callees.iter().find(|&&c| {
                    !CONTRACT_CRATES.contains(&graph.nodes[c as usize].crate_name.as_str())
                        && graph.effects[c as usize].contains(effect)
                }) else {
                    continue;
                };
                if site_suppressed(graph, id, Rule::SolverEffects.id(), &call.stmt_lines, call.line) {
                    continue;
                }
                findings.push(Finding {
                    rule: Rule::SolverEffects,
                    file: node.file.clone(),
                    line: call.line,
                    message: format!(
                        "solver-stack function `{}` reaches `{}` through `{}`; the \
                         verifier stack must stay transitively deterministic",
                        node.symbol,
                        effect.name(),
                        graph.nodes[bad as usize].symbol
                    ),
                    chain: edge_chain(graph, id, *ci, bad, effect),
                });
            }
        }
    }
}

fn hot_alloc(graph: &CallGraph, findings: &mut Vec<Finding>) {
    for (id, node) in graph.nodes.iter().enumerate() {
        if !node.decl.hot {
            continue;
        }
        let id = id as u32; // audit:allow(lossy-cast) — node ids fit u32
        // Direct allocation leaves. Justified sites were already dropped at
        // harvest (`audit:allow(hot-alloc)` masks the leaf).
        for leaf in &node.decl.leaves {
            if leaf.effect != Effect::Allocates {
                continue;
            }
            findings.push(Finding {
                rule: Rule::HotAlloc,
                file: node.file.clone(),
                line: leaf.line,
                message: format!(
                    "allocation (`{}`) in hot function `{}`; hoist it out of the \
                     loop or justify with `audit:allow(hot-alloc)`",
                    leaf.what, node.symbol
                ),
                chain: vec![Frame {
                    file: node.file.clone(),
                    line: leaf.line,
                    note: format!("{} in `{}`", leaf.what, node.symbol),
                }],
            });
        }
        // Transitive allocations through resolved callees, anchored at the
        // outgoing call site so the justification lives in the hot fn.
        for (ci, callees) in &graph.resolved[id as usize] {
            let call = &node.decl.calls[*ci];
            let Some(&bad) = callees
                .iter()
                .find(|&&c| graph.effects[c as usize].contains(Effect::Allocates))
            else {
                continue;
            };
            if site_suppressed(graph, id, Rule::HotAlloc.id(), &call.stmt_lines, call.line) {
                continue;
            }
            findings.push(Finding {
                rule: Rule::HotAlloc,
                file: node.file.clone(),
                line: call.line,
                message: format!(
                    "hot function `{}` calls `{}`, which allocates; hoist the \
                     allocation or justify with `audit:allow(hot-alloc)`",
                    node.symbol,
                    graph.nodes[bad as usize].symbol
                ),
                chain: edge_chain(graph, id, *ci, bad, Effect::Allocates),
            });
        }
    }
}

fn par_callee(graph: &CallGraph, findings: &mut Vec<Finding>) {
    for (id, node) in graph.nodes.iter().enumerate() {
        let id = id as u32; // audit:allow(lossy-cast) — node ids fit u32
        for (ci, call) in node.decl.calls.iter().enumerate() {
            if call.callable_args.is_empty() {
                continue;
            }
            if site_suppressed(graph, id, Rule::ParCallee.id(), &call.stmt_lines, call.line) {
                continue;
            }
            // Per (site, effect) dedup: one finding per forbidden effect a
            // callable carries, however many paths reach it.
            let mut reported = EffectSet::EMPTY;
            for arg in &call.callable_args {
                if let Some(name) = &arg.fn_name {
                    for cand in graph.resolve_by_name(id, name) {
                        for &effect in PAR_FORBIDDEN {
                            if reported.contains(effect)
                                || !graph.effects[cand as usize].contains(effect)
                            {
                                continue;
                            }
                            reported.insert(effect);
                            let mut chain = vec![Frame {
                                file: node.file.clone(),
                                line: call.line,
                                note: format!(
                                    "`{}` passes `{}` to `{}`",
                                    node.symbol,
                                    graph.nodes[cand as usize].symbol,
                                    call.name
                                ),
                            }];
                            chain.extend(to_frames(graph.chain_to_leaf(cand, effect)));
                            findings.push(par_finding(node, call.line, &call.name, effect, chain));
                        }
                    }
                    continue;
                }
                let (lo, hi) = arg.range;
                // Leaves of the enclosing fn inside the closure's tokens.
                for leaf in &node.decl.leaves {
                    if leaf.tok < lo || leaf.tok >= hi {
                        continue;
                    }
                    if PAR_FORBIDDEN.contains(&leaf.effect) && !reported.contains(leaf.effect) {
                        reported.insert(leaf.effect);
                        let chain = vec![Frame {
                            file: node.file.clone(),
                            line: leaf.line,
                            note: format!("{} in a callable passed to `{}`", leaf.what, call.name),
                        }];
                        findings.push(par_finding(node, call.line, &call.name, leaf.effect, chain));
                    }
                }
                // Resolved calls made from inside the closure.
                for (cj, callees) in &graph.resolved[id as usize] {
                    let inner = &node.decl.calls[*cj];
                    if inner.tok < lo || inner.tok >= hi {
                        continue;
                    }
                    for &effect in PAR_FORBIDDEN {
                        if reported.contains(effect) {
                            continue;
                        }
                        let Some(&bad) = callees
                            .iter()
                            .find(|&&c| graph.effects[c as usize].contains(effect))
                        else {
                            continue;
                        };
                        reported.insert(effect);
                        findings.push(par_finding(
                            node,
                            call.line,
                            &call.name,
                            effect,
                            edge_chain(graph, id, *cj, bad, effect),
                        ));
                    }
                }
            }
            let _ = ci;
        }
    }
}

fn par_finding(
    node: &crate::callgraph::FnNode,
    line: usize,
    par_fn: &str,
    effect: Effect,
    chain: Vec<Frame>,
) -> Finding {
    Finding {
        rule: Rule::ParCallee,
        file: node.file.clone(),
        line,
        message: format!(
            "callable passed to `{}` in `{}` carries `{}`; parallel callees \
             must be deterministic and fold-order-safe",
            par_fn,
            node.symbol,
            effect.name()
        ),
        chain,
    }
}
