//! Machine-readable audit reports: a compact JSON schema (`snbc-audit/2`)
//! and SARIF 2.1.0, both rendered through the canonical encoder in
//! [`crate::json`] so output is **byte-identical across runs** (and across
//! `SNBC_THREADS` values — findings are sorted before rendering) and
//! round-trips exactly through the matching parser.
//!
//! Schema stability contract:
//!
//! - the JSON schema string is `"snbc-audit/2"`; any field change bumps it;
//! - SARIF documents pin `version: "2.1.0"` and carry per-rule versions in
//!   `rule.properties.ruleVersion`, mirroring baseline-v2 semantics;
//! - both encoders emit findings in the canonical `Finding` sort order and
//!   rules in id order, with insertion-ordered keys, so
//!   `render(parse(render(x))) == render(x)` holds byte-for-byte.

use crate::json::{parse, render, Value};
use crate::rules::{Finding, Rule, RULES};

/// JSON schema identifier; bump on any shape change.
pub const JSON_SCHEMA: &str = "snbc-audit/2";
/// Pinned SARIF version and schema URI.
pub const SARIF_VERSION: &str = "2.1.0";
pub const SARIF_SCHEMA_URI: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Everything a machine format captures about one audit run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
}

impl Report {
    pub fn new(files_scanned: usize, mut findings: Vec<Finding>) -> Report {
        findings.sort();
        Report { files_scanned, findings }
    }
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

// ---------------------------------------------------------------------------
// snbc-audit/2 JSON.

/// Render the compact JSON report (canonical bytes).
pub fn render_json_report(report: &Report) -> String {
    let findings = report
        .findings
        .iter()
        .map(|f| {
            obj(vec![
                ("rule", s(f.rule.id())),
                ("rule_version", Value::Int(f.rule.version() as i64)),
                ("file", s(&f.file)),
                ("line", Value::Int(f.line as i64)),
                ("message", s(&f.message)),
            ])
        })
        .collect();
    let doc = obj(vec![
        ("schema", s(JSON_SCHEMA)),
        ("files_scanned", Value::Int(report.files_scanned as i64)),
        ("findings", Value::Arr(findings)),
    ]);
    render(&doc)
}

/// Parse a `snbc-audit/2` document back into a [`Report`].
pub fn parse_json_report(text: &str) -> Result<Report, String> {
    let doc = parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing `schema`")?;
    if schema != JSON_SCHEMA {
        return Err(format!("unsupported schema `{schema}` (want `{JSON_SCHEMA}`)"));
    }
    let files_scanned = doc
        .get("files_scanned")
        .and_then(Value::as_int)
        .ok_or("missing `files_scanned`")? as usize;
    let mut findings = Vec::new();
    for f in doc
        .get("findings")
        .and_then(Value::as_arr)
        .ok_or("missing `findings`")?
    {
        let rule_id = f.get("rule").and_then(Value::as_str).ok_or("finding without rule")?;
        let rule = Rule::from_id(rule_id).ok_or_else(|| format!("unknown rule `{rule_id}`"))?;
        findings.push(Finding {
            rule,
            file: f
                .get("file")
                .and_then(Value::as_str)
                .ok_or("finding without file")?
                .to_string(),
            line: f.get("line").and_then(Value::as_int).ok_or("finding without line")? as usize,
            message: f
                .get("message")
                .and_then(Value::as_str)
                .ok_or("finding without message")?
                .to_string(),
        });
    }
    Ok(Report { files_scanned, findings })
}

// ---------------------------------------------------------------------------
// SARIF 2.1.0.

fn sarif_rule(info: &crate::rules::RuleInfo) -> Value {
    obj(vec![
        ("id", s(info.id)),
        ("shortDescription", obj(vec![("text", s(info.summary))])),
        ("fullDescription", obj(vec![("text", s(info.rationale))])),
        ("help", obj(vec![("text", s(info.fix))])),
        (
            "properties",
            obj(vec![("ruleVersion", Value::Int(info.version as i64))]),
        ),
    ])
}

fn sarif_result(f: &Finding) -> Value {
    obj(vec![
        ("ruleId", s(f.rule.id())),
        ("level", s("error")),
        ("message", obj(vec![("text", s(&f.message))])),
        (
            "locations",
            Value::Arr(vec![obj(vec![(
                "physicalLocation",
                obj(vec![
                    ("artifactLocation", obj(vec![("uri", s(&f.file))])),
                    (
                        "region",
                        obj(vec![("startLine", Value::Int(f.line as i64))]),
                    ),
                ]),
            )])]),
        ),
    ])
}

/// Render a SARIF 2.1.0 document (canonical bytes). The full rule catalog is
/// embedded so viewers can show rationale and fixes without the repo.
pub fn render_sarif(report: &Report) -> String {
    let rules: Vec<Value> = {
        let mut infos: Vec<_> = RULES.iter().collect();
        infos.sort_by_key(|r| r.id);
        infos.into_iter().map(sarif_rule).collect()
    };
    let results: Vec<Value> = report.findings.iter().map(sarif_result).collect();
    let doc = obj(vec![
        ("$schema", s(SARIF_SCHEMA_URI)),
        ("version", s(SARIF_VERSION)),
        (
            "runs",
            Value::Arr(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", s("snbc-audit")),
                            ("informationUri", s("docs/AUDIT.md")),
                            ("rules", Value::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results", Value::Arr(results)),
                (
                    "properties",
                    obj(vec![(
                        "filesScanned",
                        Value::Int(report.files_scanned as i64),
                    )]),
                ),
            ])]),
        ),
    ]);
    render(&doc)
}

/// Recover a [`Report`] from a SARIF document produced by [`render_sarif`].
pub fn parse_sarif(text: &str) -> Result<Report, String> {
    let doc = parse(text)?;
    let version = doc
        .get("version")
        .and_then(Value::as_str)
        .ok_or("missing `version`")?;
    if version != SARIF_VERSION {
        return Err(format!("unsupported SARIF version `{version}`"));
    }
    let run = doc
        .get("runs")
        .and_then(Value::as_arr)
        .and_then(|r| r.first())
        .ok_or("missing `runs[0]`")?;
    let files_scanned = run
        .get("properties")
        .and_then(|p| p.get("filesScanned"))
        .and_then(Value::as_int)
        .unwrap_or(0) as usize;
    let mut findings = Vec::new();
    for res in run
        .get("results")
        .and_then(Value::as_arr)
        .ok_or("missing `results`")?
    {
        let rule_id = res
            .get("ruleId")
            .and_then(Value::as_str)
            .ok_or("result without ruleId")?;
        let rule = Rule::from_id(rule_id).ok_or_else(|| format!("unknown rule `{rule_id}`"))?;
        let message = res
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Value::as_str)
            .ok_or("result without message.text")?
            .to_string();
        let loc = res
            .get("locations")
            .and_then(Value::as_arr)
            .and_then(|l| l.first())
            .and_then(|l| l.get("physicalLocation"))
            .ok_or("result without physicalLocation")?;
        let file = loc
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(Value::as_str)
            .ok_or("result without artifactLocation.uri")?
            .to_string();
        let line = loc
            .get("region")
            .and_then(|r| r.get("startLine"))
            .and_then(Value::as_int)
            .ok_or("result without region.startLine")? as usize;
        findings.push(Finding { rule, file, line, message });
    }
    Ok(Report { files_scanned, findings })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::new(
            42,
            vec![
                Finding {
                    rule: Rule::NondetIter,
                    file: "crates/x/src/lib.rs".to_string(),
                    line: 7,
                    message: "iterating `m` (HashMap/HashSet)".to_string(),
                },
                Finding {
                    rule: Rule::FloatEq,
                    file: "crates/x/src/lib.rs".to_string(),
                    line: 3,
                    message: "exact float comparison `==`".to_string(),
                },
            ],
        )
    }

    #[test]
    fn report_new_sorts_findings() {
        let r = sample();
        assert!(r.findings[0].rule <= r.findings[1].rule);
    }

    #[test]
    fn json_roundtrip_is_byte_identical() {
        let r = sample();
        let text = render_json_report(&r);
        let parsed = parse_json_report(&text).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(render_json_report(&parsed), text);
    }

    #[test]
    fn sarif_roundtrip_is_byte_identical() {
        let r = sample();
        let text = render_sarif(&r);
        let parsed = parse_sarif(&text).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(render_sarif(&parsed), text);
    }

    #[test]
    fn sarif_embeds_full_rule_catalog() {
        let text = render_sarif(&sample());
        let doc = parse(&text).unwrap();
        let rules = doc
            .get("runs")
            .and_then(Value::as_arr)
            .and_then(|r| r.first())
            .and_then(|r| r.get("tool"))
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(rules.len(), RULES.len());
        for info in RULES {
            assert!(
                rules.iter().any(|r| r.get("id").and_then(Value::as_str) == Some(info.id)),
                "missing rule {}",
                info.id
            );
        }
    }

    #[test]
    fn empty_report_renders_and_roundtrips() {
        let r = Report::new(10, Vec::new());
        for (render_fn, parse_fn) in [
            (
                render_json_report as fn(&Report) -> String,
                parse_json_report as fn(&str) -> Result<Report, String>,
            ),
            (render_sarif, parse_sarif),
        ] {
            let text = render_fn(&r);
            let parsed = parse_fn(&text).unwrap();
            assert_eq!(parsed, r);
            assert_eq!(render_fn(&parsed), text);
        }
    }

    #[test]
    fn wrong_schema_is_rejected() {
        assert!(parse_json_report("{\"schema\":\"snbc-audit/1\",\"files_scanned\":0,\"findings\":[]}").is_err());
        assert!(parse_sarif("{\"version\":\"2.0.0\",\"runs\":[]}").is_err());
    }
}
