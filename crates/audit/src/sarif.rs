//! Machine-readable audit reports: a compact JSON schema (`snbc-audit/4`)
//! and SARIF 2.1.0, both rendered through the canonical encoder in
//! [`crate::json`] so output is **byte-identical across runs** (and across
//! `SNBC_THREADS` values — findings are sorted before rendering) and
//! round-trips exactly through the matching parser.
//!
//! Schema stability contract:
//!
//! - the JSON schema string is `"snbc-audit/4"`; any field change bumps it
//!   (v3 added the optional per-finding `chain` — the call chain from the
//!   reported site to the effect leaf; v4 adds the top-level `rules`
//!   catalog of `{id, version}` pairs, and `chain` now also carries the
//!   dataflow def-use hops behind the provenance-aware rules);
//! - SARIF documents pin `version: "2.1.0"` and carry per-rule versions in
//!   `rule.properties.ruleVersion`, mirroring baseline semantics; findings
//!   with a chain export it as `codeFlows[0].threadFlows[0].locations`;
//! - both encoders emit findings in the canonical `Finding` sort order and
//!   rules in id order, with insertion-ordered keys, so
//!   `render(parse(render(x))) == render(x)` holds byte-for-byte.

use crate::json::{parse, render, Value};
use crate::rules::{Finding, Frame, Rule, RULES};

/// JSON schema identifier; bump on any shape change.
pub const JSON_SCHEMA: &str = "snbc-audit/4";
/// Pinned SARIF version and schema URI.
pub const SARIF_VERSION: &str = "2.1.0";
pub const SARIF_SCHEMA_URI: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Everything a machine format captures about one audit run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
}

impl Report {
    pub fn new(files_scanned: usize, mut findings: Vec<Finding>) -> Report {
        findings.sort();
        Report { files_scanned, findings }
    }
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

// ---------------------------------------------------------------------------
// snbc-audit/4 JSON.

/// Render the compact JSON report (canonical bytes). The top-level `rules`
/// array pins every rule's version so a stored report is self-describing:
/// diffing two reports across a rule bump shows *why* the findings moved.
pub fn render_json_report(report: &Report) -> String {
    let rules: Vec<Value> = RULES
        .iter()
        .map(|info| {
            obj(vec![
                ("id", s(info.id)),
                ("version", Value::Int(info.version as i64)),
            ])
        })
        .collect();
    let findings = report
        .findings
        .iter()
        .map(|f| {
            let mut pairs = vec![
                ("rule", s(f.rule.id())),
                ("rule_version", Value::Int(f.rule.version() as i64)),
                ("file", s(&f.file)),
                ("line", Value::Int(f.line as i64)),
                ("message", s(&f.message)),
            ];
            if !f.chain.is_empty() {
                pairs.push((
                    "chain",
                    Value::Arr(
                        f.chain
                            .iter()
                            .map(|fr| {
                                obj(vec![
                                    ("file", s(&fr.file)),
                                    ("line", Value::Int(fr.line as i64)),
                                    ("note", s(&fr.note)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            obj(pairs)
        })
        .collect();
    let doc = obj(vec![
        ("schema", s(JSON_SCHEMA)),
        ("rules", Value::Arr(rules)),
        ("files_scanned", Value::Int(report.files_scanned as i64)),
        ("findings", Value::Arr(findings)),
    ]);
    render(&doc)
}

/// Parse a `snbc-audit/4` document back into a [`Report`]. The `rules`
/// catalog is advisory — the parser validates the schema string and ignores
/// the catalog, so re-rendering regenerates it from the live rule table.
pub fn parse_json_report(text: &str) -> Result<Report, String> {
    let doc = parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing `schema`")?;
    if schema != JSON_SCHEMA {
        return Err(format!("unsupported schema `{schema}` (want `{JSON_SCHEMA}`)"));
    }
    let files_scanned = doc
        .get("files_scanned")
        .and_then(Value::as_int)
        .ok_or("missing `files_scanned`")? as usize;
    let mut findings = Vec::new();
    for f in doc
        .get("findings")
        .and_then(Value::as_arr)
        .ok_or("missing `findings`")?
    {
        let rule_id = f.get("rule").and_then(Value::as_str).ok_or("finding without rule")?;
        let rule = Rule::from_id(rule_id).ok_or_else(|| format!("unknown rule `{rule_id}`"))?;
        let mut chain = Vec::new();
        if let Some(frames) = f.get("chain").and_then(Value::as_arr) {
            for fr in frames {
                chain.push(parse_frame_obj(
                    fr.get("file").and_then(Value::as_str),
                    fr.get("line").and_then(Value::as_int),
                    fr.get("note").and_then(Value::as_str),
                )?);
            }
        }
        findings.push(Finding {
            rule,
            file: f
                .get("file")
                .and_then(Value::as_str)
                .ok_or("finding without file")?
                .to_string(),
            line: f.get("line").and_then(Value::as_int).ok_or("finding without line")? as usize,
            message: f
                .get("message")
                .and_then(Value::as_str)
                .ok_or("finding without message")?
                .to_string(),
            chain,
        });
    }
    Ok(Report { files_scanned, findings })
}

fn parse_frame_obj(
    file: Option<&str>,
    line: Option<i64>,
    note: Option<&str>,
) -> Result<Frame, String> {
    Ok(Frame {
        file: file.ok_or("chain frame without file")?.to_string(),
        line: line.ok_or("chain frame without line")? as usize,
        note: note.ok_or("chain frame without note")?.to_string(),
    })
}

// ---------------------------------------------------------------------------
// SARIF 2.1.0.

fn sarif_rule(info: &crate::rules::RuleInfo) -> Value {
    obj(vec![
        ("id", s(info.id)),
        ("shortDescription", obj(vec![("text", s(info.summary))])),
        ("fullDescription", obj(vec![("text", s(info.rationale))])),
        ("help", obj(vec![("text", s(info.fix))])),
        (
            "properties",
            obj(vec![("ruleVersion", Value::Int(info.version as i64))]),
        ),
    ])
}

fn physical_location(file: &str, line: usize) -> Value {
    obj(vec![
        ("artifactLocation", obj(vec![("uri", s(file))])),
        ("region", obj(vec![("startLine", Value::Int(line as i64))])),
    ])
}

fn sarif_result(f: &Finding) -> Value {
    let mut pairs = vec![
        ("ruleId", s(f.rule.id())),
        ("level", s("error")),
        ("message", obj(vec![("text", s(&f.message))])),
        (
            "locations",
            Value::Arr(vec![obj(vec![(
                "physicalLocation",
                physical_location(&f.file, f.line),
            )])]),
        ),
    ];
    if !f.chain.is_empty() {
        // One codeFlow, one threadFlow: the deterministic shortest call chain
        // from the reported site down to the effect leaf.
        let locations: Vec<Value> = f
            .chain
            .iter()
            .map(|fr| {
                obj(vec![(
                    "location",
                    obj(vec![
                        ("physicalLocation", physical_location(&fr.file, fr.line)),
                        ("message", obj(vec![("text", s(&fr.note))])),
                    ]),
                )])
            })
            .collect();
        pairs.push((
            "codeFlows",
            Value::Arr(vec![obj(vec![(
                "threadFlows",
                Value::Arr(vec![obj(vec![("locations", Value::Arr(locations))])]),
            )])]),
        ));
    }
    obj(pairs)
}

/// Render a SARIF 2.1.0 document (canonical bytes). The full rule catalog is
/// embedded so viewers can show rationale and fixes without the repo.
pub fn render_sarif(report: &Report) -> String {
    let rules: Vec<Value> = {
        let mut infos: Vec<_> = RULES.iter().collect();
        infos.sort_by_key(|r| r.id);
        infos.into_iter().map(sarif_rule).collect()
    };
    let results: Vec<Value> = report.findings.iter().map(sarif_result).collect();
    let doc = obj(vec![
        ("$schema", s(SARIF_SCHEMA_URI)),
        ("version", s(SARIF_VERSION)),
        (
            "runs",
            Value::Arr(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", s("snbc-audit")),
                            ("informationUri", s("docs/AUDIT.md")),
                            ("rules", Value::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results", Value::Arr(results)),
                (
                    "properties",
                    obj(vec![(
                        "filesScanned",
                        Value::Int(report.files_scanned as i64),
                    )]),
                ),
            ])]),
        ),
    ]);
    render(&doc)
}

/// Recover a [`Report`] from a SARIF document produced by [`render_sarif`].
pub fn parse_sarif(text: &str) -> Result<Report, String> {
    let doc = parse(text)?;
    let version = doc
        .get("version")
        .and_then(Value::as_str)
        .ok_or("missing `version`")?;
    if version != SARIF_VERSION {
        return Err(format!("unsupported SARIF version `{version}`"));
    }
    let run = doc
        .get("runs")
        .and_then(Value::as_arr)
        .and_then(|r| r.first())
        .ok_or("missing `runs[0]`")?;
    let files_scanned = run
        .get("properties")
        .and_then(|p| p.get("filesScanned"))
        .and_then(Value::as_int)
        .unwrap_or(0) as usize;
    let mut findings = Vec::new();
    for res in run
        .get("results")
        .and_then(Value::as_arr)
        .ok_or("missing `results`")?
    {
        let rule_id = res
            .get("ruleId")
            .and_then(Value::as_str)
            .ok_or("result without ruleId")?;
        let rule = Rule::from_id(rule_id).ok_or_else(|| format!("unknown rule `{rule_id}`"))?;
        let message = res
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Value::as_str)
            .ok_or("result without message.text")?
            .to_string();
        let loc = res
            .get("locations")
            .and_then(Value::as_arr)
            .and_then(|l| l.first())
            .and_then(|l| l.get("physicalLocation"))
            .ok_or("result without physicalLocation")?;
        let file = loc
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(Value::as_str)
            .ok_or("result without artifactLocation.uri")?
            .to_string();
        let line = loc
            .get("region")
            .and_then(|r| r.get("startLine"))
            .and_then(Value::as_int)
            .ok_or("result without region.startLine")? as usize;
        let mut chain = Vec::new();
        if let Some(locs) = res
            .get("codeFlows")
            .and_then(Value::as_arr)
            .and_then(|c| c.first())
            .and_then(|c| c.get("threadFlows"))
            .and_then(Value::as_arr)
            .and_then(|t| t.first())
            .and_then(|t| t.get("locations"))
            .and_then(Value::as_arr)
        {
            for l in locs {
                let loc = l.get("location").ok_or("threadFlow entry without location")?;
                let phys = loc
                    .get("physicalLocation")
                    .ok_or("chain frame without physicalLocation")?;
                chain.push(parse_frame_obj(
                    phys.get("artifactLocation")
                        .and_then(|a| a.get("uri"))
                        .and_then(Value::as_str),
                    phys.get("region")
                        .and_then(|r| r.get("startLine"))
                        .and_then(Value::as_int),
                    loc.get("message")
                        .and_then(|m| m.get("text"))
                        .and_then(Value::as_str),
                )?);
            }
        }
        findings.push(Finding { rule, file, line, message, chain });
    }
    Ok(Report { files_scanned, findings })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::new(
            42,
            vec![
                Finding {
                    rule: Rule::NondetIter,
                    file: "crates/x/src/lib.rs".to_string(),
                    line: 7,
                    message: "iterating `m` (HashMap/HashSet)".to_string(),
                    chain: Vec::new(),
                },
                Finding {
                    rule: Rule::FloatEq,
                    file: "crates/x/src/lib.rs".to_string(),
                    line: 3,
                    message: "exact float comparison `==`".to_string(),
                    chain: Vec::new(),
                },
                Finding {
                    rule: Rule::SolverEffects,
                    file: "crates/sdp/src/solver.rs".to_string(),
                    line: 12,
                    message: "solver-stack function reaches `reads-env`".to_string(),
                    chain: vec![
                        Frame {
                            file: "crates/sdp/src/solver.rs".to_string(),
                            line: 12,
                            note: "`sdp::solve` calls `util::peek`".to_string(),
                        },
                        Frame {
                            file: "crates/util/src/lib.rs".to_string(),
                            line: 4,
                            note: "`std::env::var` in `util::peek`".to_string(),
                        },
                    ],
                },
            ],
        )
    }

    #[test]
    fn report_new_sorts_findings() {
        let r = sample();
        assert!(r.findings[0].rule <= r.findings[1].rule);
    }

    #[test]
    fn json_roundtrip_is_byte_identical() {
        let r = sample();
        let text = render_json_report(&r);
        let parsed = parse_json_report(&text).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(render_json_report(&parsed), text);
    }

    #[test]
    fn sarif_roundtrip_is_byte_identical() {
        let r = sample();
        let text = render_sarif(&r);
        let parsed = parse_sarif(&text).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(render_sarif(&parsed), text);
    }

    #[test]
    fn sarif_embeds_full_rule_catalog() {
        let text = render_sarif(&sample());
        let doc = parse(&text).unwrap();
        let rules = doc
            .get("runs")
            .and_then(Value::as_arr)
            .and_then(|r| r.first())
            .and_then(|r| r.get("tool"))
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(rules.len(), RULES.len());
        for info in RULES {
            assert!(
                rules.iter().any(|r| r.get("id").and_then(Value::as_str) == Some(info.id)),
                "missing rule {}",
                info.id
            );
        }
    }

    #[test]
    fn empty_report_renders_and_roundtrips() {
        let r = Report::new(10, Vec::new());
        for (render_fn, parse_fn) in [
            (
                render_json_report as fn(&Report) -> String,
                parse_json_report as fn(&str) -> Result<Report, String>,
            ),
            (render_sarif, parse_sarif),
        ] {
            let text = render_fn(&r);
            let parsed = parse_fn(&text).unwrap();
            assert_eq!(parsed, r);
            assert_eq!(render_fn(&parsed), text);
        }
    }

    #[test]
    fn wrong_schema_is_rejected() {
        assert!(parse_json_report("{\"schema\":\"snbc-audit/2\",\"files_scanned\":0,\"findings\":[]}").is_err());
        assert!(parse_json_report("{\"schema\":\"snbc-audit/3\",\"files_scanned\":0,\"findings\":[]}").is_err());
        assert!(parse_sarif("{\"version\":\"2.0.0\",\"runs\":[]}").is_err());
    }

    #[test]
    fn json_report_pins_every_rule_version() {
        let text = render_json_report(&sample());
        let doc = parse(&text).unwrap();
        assert_eq!(doc.get("schema").and_then(Value::as_str), Some(JSON_SCHEMA));
        let rules = doc.get("rules").and_then(Value::as_arr).unwrap();
        assert_eq!(rules.len(), RULES.len());
        for info in RULES {
            assert!(
                rules.iter().any(|r| {
                    r.get("id").and_then(Value::as_str) == Some(info.id)
                        && r.get("version").and_then(Value::as_int) == Some(info.version as i64)
                }),
                "missing or mis-versioned rule {}",
                info.id
            );
        }
    }

    #[test]
    fn chains_survive_both_roundtrips() {
        let r = sample();
        let with_chain = &parse_json_report(&render_json_report(&r)).unwrap().findings[2];
        assert_eq!(with_chain.chain.len(), 2);
        let from_sarif = parse_sarif(&render_sarif(&r)).unwrap();
        assert_eq!(from_sarif.findings[2].chain, r.findings[2].chain);
        // codeFlows must be present for the chained finding.
        let doc = parse(&render_sarif(&r)).unwrap();
        let results = doc
            .get("runs")
            .and_then(Value::as_arr)
            .and_then(|r| r.first())
            .and_then(|r| r.get("results"))
            .and_then(Value::as_arr)
            .unwrap();
        assert!(results
            .iter()
            .any(|res| res.get("codeFlows").is_some()));
    }
}
