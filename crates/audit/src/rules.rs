//! The soundness + determinism rules applied to tokenized Rust source.
//!
//! Rule identifiers (used in baselines and `// audit:allow(...)` markers):
//!
//! | id | what it flags |
//! |---|---|
//! | `float-eq` | `==` / `!=` with a float literal on either side |
//! | `panicking` | `.unwrap()` / `.expect()` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` in solver-crate library code |
//! | `lossy-cast` | `as` casts to a numeric type narrower than 64 bits (`f32`, `i8..i32`, `u8..u32`) |
//! | `raw-thread` | `thread::spawn` outside `crates/par` / `crates/telemetry` |
//! | `raw-instant` | `Instant::now` outside `crates/trace` / `crates/telemetry` / `crates/par` |
//! | `nondet-iter` | iterating a `HashMap` / `HashSet` in non-test library code |
//! | `swallowed-result` | `let _ =` / bare `.ok();` discarding a value in solver crates |
//! | `env-read` | `std::env::var{,_os}` / `vars{,_os}` outside `crates/par`, `crates/cli`, `crates/audit` |
//! | `raw-print` | `print!`/`println!`/`eprint!`/`eprintln!` in library code outside `crates/cli` / `crates/audit` and bin targets |
//! | `unordered-reduce` | `+=` / `.sum()` accumulation over `par_map_collect` output outside `crates/par` |
//! | `solver-effects` | solver-stack call that transitively reaches an env/clock/thread effect outside the stack |
//! | `hot-alloc` | allocation (direct or through a resolved callee) in an `// audit:hot` function |
//! | `par-callee` | callable passed to an `snbc_par` entry point that carries a nondeterministic effect |
//!
//! `raw-thread`, `raw-instant`, and `env-read` detect their *leaves* through
//! the effect engine ([`crate::effects`]): call-shaped, alias-resolved sites
//! only, so a renamed import (`use std::thread::spawn as sp`) is caught and a
//! `use` declaration's tokens are not. The three contract rules come from
//! [`crate::contracts`] over the linked [`crate::callgraph`] and carry their
//! full call chain ([`Frame`]) down to the leaf.
//!
//! Rules are **scope-aware**: they run over the [`crate::syntax::ItemTree`]
//! (so `#[cfg(test)]` / `#[test]` items are skipped structurally, nested
//! items included) and resolve names through the per-scope
//! [`crate::scopes::ScopeTable`], so `use std::collections::HashMap as Map`
//! does not hide a nondeterministic map and `use myclock::Instant` does not
//! false-positive the clock rule. Suppressions attach to the **enclosing
//! statement span**: a `// audit:allow(<rule>)` on any line of a multi-line
//! statement, or on the line directly above it, silences that rule inside
//! the statement.

use crate::callgraph::{self, FileAnalysis};
use crate::dataflow::{self, Hop};
use crate::effects::{self, Effect, Leaf};
use crate::scopes::{path_is, ScopeTable};
use crate::syntax::{ItemTree, ScopeKind};
use crate::tokenizer::{tokenize, Lexed, Token, TokenKind};
use std::collections::BTreeSet;
use std::fmt;

/// Rule identity. `Arch` findings come from `arch.rs`, not from token scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    FloatEq,
    Panicking,
    LossyCast,
    RawThread,
    RawInstant,
    NondetIter,
    SwallowedResult,
    EnvRead,
    RawPrint,
    UnorderedReduce,
    ParCaptureRace,
    SolverEffects,
    HotAlloc,
    ParCallee,
    Arch,
}

/// Static metadata for one rule: identity, a semantic version (bumping it
/// invalidates only that rule's baseline-v2 entries), and the prose used by
/// `snbc-audit explain <rule>` and the SARIF rule table.
#[derive(Debug)]
pub struct RuleInfo {
    pub rule: Rule,
    pub id: &'static str,
    /// Bumped whenever the rule's matching semantics tighten or change.
    pub version: u32,
    /// One-line summary (SARIF `shortDescription`).
    pub summary: &'static str,
    /// Why the rule exists (SARIF `fullDescription`, `explain` output).
    pub rationale: &'static str,
    /// Suggested fix (SARIF `help`, `explain` output).
    pub fix: &'static str,
}

/// All rules, in the canonical report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        rule: Rule::Arch,
        id: "arch",
        version: 1,
        summary: "Cargo.toml dependencies must match the DESIGN.md DAG",
        rationale: "The workspace layering (linalg under the solvers, observability \
                    crates at the bottom, core above everything) is what keeps the \
                    from-scratch solver stack auditable; an undeclared edge silently \
                    couples layers and invalidates the DESIGN.md inventory.",
        fix: "Remove the dependency, or update DESIGN.md and the arch table in \
              crates/audit/src/arch.rs together.",
    },
    RuleInfo {
        rule: Rule::Panicking,
        id: "panicking",
        version: 1,
        summary: "panicking call in solver library code",
        rationale: "The LP/SDP/SOS/interval stack stands in for MOSEK-class solvers \
                    inside the CEGIS loop; a panic there aborts certificate synthesis \
                    instead of surfacing a recoverable SdpError the verifier can act on.",
        fix: "Return a Result (SdpError or a crate error) instead of .unwrap()/.expect()/ \
              panic!; annotate `// audit:allow(panicking)` only for invariants that are \
              genuinely unreachable.",
    },
    RuleInfo {
        rule: Rule::FloatEq,
        id: "float-eq",
        version: 1,
        summary: "exact float comparison against a literal",
        rationale: "Exact `==`/`!=` against float literals inside IPM iterations or \
                    barrier checks turns rounding noise into control-flow divergence — \
                    a 'verified' certificate can hinge on one ulp.",
        fix: "Compare with an explicit tolerance ((a - b).abs() < eps), or annotate \
              `// audit:allow(float-eq)` where exactness is intended (sentinels, \
              sign checks against 0.0).",
    },
    RuleInfo {
        rule: Rule::LossyCast,
        id: "lossy-cast",
        version: 1,
        summary: "numeric cast to a type narrower than 64 bits",
        rationale: "`as f32`/`as i32`-style casts silently truncate; solver indices and \
                    residuals must stay at full width until an explicit, checked \
                    narrowing.",
        fix: "Use the 64-bit type, TryFrom, or an explicit clamped conversion; annotate \
              `// audit:allow(lossy-cast)` when the narrowing is intended.",
    },
    RuleInfo {
        rule: Rule::RawThread,
        id: "raw-thread",
        // v3: leaves come from the effect engine — call-shaped and
        // alias-resolved, so renamed fn imports are caught and `use`
        // declarations are no longer flagged.
        version: 3,
        summary: "raw thread::spawn outside the deterministic runtime",
        rationale: "All parallelism must go through snbc-par: its index-ordered \
                    reductions and SNBC_THREADS pool are what make certificates bitwise \
                    identical at any thread count, and it rethrows worker panics at \
                    scope exit. A raw spawn bypasses all three guarantees.",
        fix: "Use snbc_par::{join, par_map_collect, par_map_reduce, par_for_chunks}; \
              annotate `// audit:allow(raw-thread)` only inside sanctioned runtime code.",
    },
    RuleInfo {
        rule: Rule::RawInstant,
        id: "raw-instant",
        // v3: effect-engine leaves (call-shaped, alias-resolved; also covers
        // `SystemTime::now`).
        version: 3,
        summary: "raw Instant::now / SystemTime::now outside the trace clock owners",
        rationale: "Every timestamp must sit on the single snbc-trace epoch so run \
                    reports and Perfetto timelines line up; a raw Instant::now creates \
                    a second clock that drifts from the trace.",
        fix: "Time with snbc_trace::Stopwatch or snbc_trace::now_us; annotate \
              `// audit:allow(raw-instant)` only inside the clock-owner crates.",
    },
    RuleInfo {
        rule: Rule::NondetIter,
        id: "nondet-iter",
        version: 1,
        summary: "iteration over a HashMap/HashSet in library code",
        rationale: "HashMap/HashSet iteration order is randomized per process; any \
                    float reduction, output vector, or counterexample list built by \
                    iterating one breaks the bitwise-identical-certificates contract \
                    (docs/PARALLELISM.md) in a way the SNBC_THREADS matrix cannot catch.",
        fix: "Use BTreeMap/BTreeSet, or collect and sort by a stable key before \
              iterating; annotate `// audit:allow(nondet-iter)` when the order provably \
              cannot reach any output (pure membership sets).",
    },
    RuleInfo {
        rule: Rule::SwallowedResult,
        id: "swallowed-result",
        // v2: def-use based — beyond `let _ =` and bare `.ok();`, any named
        // binding of a Result-shaped value (explicit `: Result<…>` type,
        // a same-file `-> Result` callee, an `Ok`/`Err` constructor, or a
        // rebinding thereof) with no subsequent use is a swallow, including
        // `_`-prefixed names.
        version: 2,
        summary: "Result binding with no subsequent use in solver code",
        rationale: "The solver crates signal numerical failure through Results \
                    (SdpError); `let _ =`, a bare `.ok();`, or a named Result \
                    binding that is never read again makes an infeasible solve or a \
                    failed factorization vanish instead of reaching telemetry and \
                    the CEGIS round logic. The def-use pass proves the binding dead \
                    instead of guessing from its name.",
        fix: "Propagate with `?`, handle the Err arm explicitly, or document the \
              discard with `// audit:allow(swallowed-result)` and a reason.",
    },
    RuleInfo {
        rule: Rule::EnvRead,
        id: "env-read",
        // v2: effect-engine leaves — renamed imports (`use std::env::var as
        // v`) are now caught at the call site.
        version: 2,
        summary: "environment read outside the sanctioned config surfaces",
        rationale: "Run reports are only reproducible if every input is visible: \
                    SNBC_THREADS is read once by snbc-par and recorded in telemetry, \
                    and the CLI owns user-facing flags. An ad-hoc std::env::var deep in \
                    a solver changes behavior invisibly to the report.",
        fix: "Thread the setting through a config struct or the CLI, or read it in \
              crates/par; annotate `// audit:allow(env-read)` for debug-only escape \
              hatches that cannot affect results.",
    },
    RuleInfo {
        rule: Rule::RawPrint,
        id: "raw-print",
        version: 1,
        summary: "print!-family macro in library code outside the output owners",
        rationale: "Library crates have structured output surfaces — progress events \
                    (snbc-metrics), telemetry counters, and the trace — and stdout \
                    belongs to machine-readable streams the CLI pipes (`--progress -` \
                    NDJSON, certificates). A stray println! in a solver or the CEGIS \
                    loop corrupts piped output and bypasses every sink the batch \
                    service fans events into; only the CLI, the audit tool, and bin \
                    targets own the terminal.",
        fix: "Emit a ProgressEvent / telemetry counter / trace span instead, or move \
              the printing to the CLI layer; annotate `// audit:allow(raw-print)` \
              only for env-gated debug escape hatches that never run by default.",
    },
    RuleInfo {
        rule: Rule::UnorderedReduce,
        id: "unordered-reduce",
        // v3: provenance-aware — the dataflow engine follows the
        // par_map_collect/par_map_reduce result through `let` rebinds and
        // slice projections, so a fold three bindings away is still caught;
        // findings carry the def-use chain as SARIF codeFlows.
        version: 3,
        summary: "order-sensitive FP fold over a value that flows from parallel output",
        rationale: "Float reductions over parallel-produced data must have one \
                    canonical evaluation order; snbc_par::par_map_reduce's fixed chunk \
                    grid plus serial index-ascending fold is that order. Ad-hoc \
                    `+=`/`.sum()`/`mul_add` loops over values that *flow from* \
                    par_map_collect output — however many `let` rebinds away — are \
                    easy to reorder accidentally during refactors; the def-use chain \
                    on each finding shows every hop back to the par call.",
        fix: "Use snbc_par::par_map_reduce, or keep the serial fold and annotate \
              `// audit:allow(unordered-reduce)` noting why the order is fixed \
              (index-ascending over the already-ordered output).",
    },
    RuleInfo {
        rule: Rule::ParCaptureRace,
        id: "par-capture-race",
        version: 1,
        summary: "snbc_par closure captures mutable or interior-mutable shared state",
        rationale: "Closures handed to snbc_par entry points run concurrently: one \
                    that mutates a captured local, pokes captured Cell/RefCell/Mutex/\
                    atomic state, or reaches a buffer also passed as the call's \
                    `&mut` output argument races against its siblings — a data race \
                    the borrow checker misses behind interior mutability, and a \
                    determinism hole even when it is technically synchronized \
                    (lock acquisition order varies with SNBC_THREADS).",
        fix: "Return the value from the closure and let the runtime's index-ordered \
              collect own the output; move shared scratch to par_for_chunks_scratch's \
              per-worker buffers; annotate `// audit:allow(par-capture-race)` only \
              with an argument why the access cannot race or reorder.",
    },
    RuleInfo {
        rule: Rule::SolverEffects,
        id: "solver-effects",
        version: 1,
        summary: "solver-stack call transitively reaching env/clock/thread effects",
        rationale: "The per-site rules catch a leaf *inside* the solver stack, but a \
                    call that leaves the stack and reaches std::env::var three frames \
                    down is just as much a hidden input. The call graph propagates \
                    spawns-thread / reads-time / reads-env to a fixpoint and this \
                    contract fires on the boundary edge, with the full chain attached.",
        fix: "Thread the setting/clock through a config struct or the sanctioned \
              wrappers (snbc-par, snbc-trace), or annotate the boundary call with \
              `// audit:allow(solver-effects)` and a reason.",
    },
    RuleInfo {
        rule: Rule::HotAlloc,
        id: "hot-alloc",
        version: 1,
        summary: "allocation inside an `// audit:hot` function",
        rationale: "Functions marked `// audit:hot` are per-iteration kernels (learner \
                    epochs, Schur assembly, counterexample ascent); an allocation \
                    there — direct, or through any resolved workspace callee — turns \
                    O(1) inner-loop work into allocator traffic that dominates the \
                    profile. The effect lattice is a lower bound: unresolved calls \
                    are not flagged but show as `unresolved-call` in the graph dump.",
        fix: "Hoist the buffer out of the loop and reuse it (fill/copy_from_slice \
              instead of vec!/collect), or justify a setup allocation with \
              `// audit:allow(hot-alloc)` on its statement.",
    },
    RuleInfo {
        rule: Rule::ParCallee,
        id: "par-callee",
        version: 1,
        summary: "nondeterministic callable handed to an snbc_par entry point",
        rationale: "snbc-par's determinism guarantee assumes the callables it runs \
                    are pure with respect to scheduling: a closure that reads the \
                    environment, samples a clock, spawns threads, or folds floats in \
                    a noncanonical order produces different bits at different thread \
                    counts even under the fixed chunk grid.",
        fix: "Move env/clock reads out of the callable (capture the value instead), \
              and route reductions through par_map_reduce's index-ordered fold; \
              annotate `// audit:allow(par-callee)` only with a determinism argument.",
    },
];

impl Rule {
    pub fn info(self) -> &'static RuleInfo {
        RULES.iter().find(|r| r.rule == self).expect("rule metadata")
    }

    pub fn id(self) -> &'static str {
        self.info().id
    }

    pub fn version(self) -> u32 {
        self.info().version
    }

    pub fn from_id(id: &str) -> Option<Rule> {
        RULES.iter().find(|r| r.id == id).map(|r| r.rule)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One step of an interprocedural call chain, from the reported site down to
/// the effect leaf. Exported as SARIF `codeFlows`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Frame {
    pub file: String,
    pub line: usize,
    /// Human-readable step, e.g. "`sdp::solve` calls `core::train`".
    pub note: String,
}

/// One violation, reported against a workspace-relative path. Effect-contract
/// findings carry the call chain to the leaf; per-site findings leave it empty.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: usize,
    pub message: String,
    pub chain: Vec<Frame>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Per-file scan options, derived from the crate the file belongs to.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanOptions {
    /// `panicking` (library code of solver crates only).
    pub check_panicking: bool,
    /// `raw-thread` (everywhere except the thread-owner crates).
    pub check_raw_thread: bool,
    /// `raw-instant` (everywhere except the clock-owner crates).
    pub check_raw_instant: bool,
    /// `swallowed-result` (solver crates only).
    pub check_swallowed_result: bool,
    /// `env-read` (everywhere except par/cli/audit).
    pub check_env_read: bool,
    /// `raw-print` (everywhere except cli/audit; bin targets exempted
    /// per-file in [`scan_source_full`]).
    pub check_raw_print: bool,
    /// `unordered-reduce` (everywhere except par itself).
    pub check_unordered_reduce: bool,
    /// `par-capture-race` (everywhere except par itself, whose internals
    /// legitimately manage the shared worker state).
    pub check_par_capture_race: bool,
}

impl ScanOptions {
    /// The canonical per-crate gating, shared by the workspace walk and the
    /// in-memory [`crate::audit_files`] entry point.
    pub fn for_crate(crate_name: &str) -> ScanOptions {
        ScanOptions {
            check_panicking: crate::SOLVER_CRATES.contains(&crate_name),
            check_raw_thread: !crate::THREAD_OWNER_CRATES.contains(&crate_name),
            check_raw_instant: !crate::INSTANT_OWNER_CRATES.contains(&crate_name),
            check_swallowed_result: crate::SOLVER_CRATES.contains(&crate_name),
            check_env_read: !crate::ENV_OWNER_CRATES.contains(&crate_name),
            check_raw_print: !crate::PRINT_OWNER_CRATES.contains(&crate_name),
            check_unordered_reduce: crate_name != "par",
            check_par_capture_race: crate_name != "par",
        }
    }
}

/// Shared context handed to every rule: the token stream plus the syntax and
/// symbol layers built over it.
pub struct RuleCtx<'a> {
    pub file: &'a str,
    pub tokens: &'a [Token],
    pub tree: &'a ItemTree,
    pub scopes: &'a ScopeTable,
    /// Effect leaves of the file (shared with the call-graph harvest).
    pub leaves: &'a [Leaf],
    pub opts: ScanOptions,
}

/// A finding still carrying its anchor token, so suppression can look up the
/// enclosing statement span before the token index is dropped.
type Hit = (usize, Finding);

impl RuleCtx<'_> {
    fn in_test(&self, i: usize) -> bool {
        self.tree.in_test.get(i).copied().unwrap_or(false)
    }

    fn text(&self, i: usize) -> &str {
        self.tokens.get(i).map_or("", |t| t.text.as_str())
    }

    fn is_ident(&self, i: usize) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident)
    }

    fn path_is(&self, i: usize, canonical: &str, min_segments: usize) -> bool {
        path_is(self.scopes, self.tokens, self.tree, i, canonical, min_segments)
    }

    fn hit(&self, rule: Rule, tok: usize, message: String) -> Hit {
        self.hit_chain(rule, tok, message, Vec::new())
    }

    /// A hit carrying a def-use chain (rendered as SARIF `codeFlows`): the
    /// flagged site first, then the provenance hops, origin last.
    fn hit_chain(&self, rule: Rule, tok: usize, message: String, chain: Vec<Frame>) -> Hit {
        (
            tok,
            Finding {
                rule,
                file: self.file.to_string(),
                line: self.tokens[tok].line,
                message,
                chain,
            },
        )
    }

    /// Lift provenance hops into chain frames anchored in this file, headed
    /// by a frame for the flagged site itself.
    fn chain_from_hops(&self, site_line: usize, site_note: String, hops: &[Hop]) -> Vec<Frame> {
        let mut chain = vec![Frame {
            file: self.file.to_string(),
            line: site_line,
            note: site_note,
        }];
        chain.extend(hops.iter().map(|h| Frame {
            file: self.file.to_string(),
            line: h.line,
            note: h.note.clone(),
        }));
        chain
    }
}

/// Per-file scan result: the findings plus the call-graph harvest consumed by
/// the interprocedural pass.
#[derive(Debug)]
pub struct FileScan {
    pub findings: Vec<Finding>,
    pub analysis: FileAnalysis,
}

/// Scan one source file and return its (unsuppressed) findings.
pub fn scan_source(rel_path: &str, src: &str, opts: ScanOptions) -> Vec<Finding> {
    scan_source_full(rel_path, src, opts, "").findings
}

/// Full per-file pass: tokenize once, compute effect leaves once, run every
/// syntactic rule, and harvest the [`FileAnalysis`] for the call-graph layer.
/// `crate_name` drives leaf ownership masking (empty = no crate, mask nothing).
pub fn scan_source_full(rel_path: &str, src: &str, opts: ScanOptions, crate_name: &str) -> FileScan {
    let lexed = tokenize(src);
    let tree = ItemTree::build(&lexed.tokens);
    let scopes = ScopeTable::build(&lexed.tokens, &tree);
    let leaves = effects::leaf_effects(&lexed.tokens, &tree, &scopes);
    let ctx = RuleCtx {
        file: rel_path,
        tokens: &lexed.tokens,
        tree: &tree,
        scopes: &scopes,
        leaves: &leaves,
        opts,
    };

    let mut hits: Vec<Hit> = Vec::new();
    hits.extend(float_eq(&ctx));
    hits.extend(lossy_cast(&ctx));
    if opts.check_panicking {
        hits.extend(panicking(&ctx));
    }
    if opts.check_raw_thread {
        hits.extend(raw_thread(&ctx));
    }
    if opts.check_raw_instant {
        hits.extend(raw_instant(&ctx));
    }
    let nondet_hits = nondet_iter(&ctx);
    if opts.check_swallowed_result {
        hits.extend(swallowed_result(&ctx));
    }
    if opts.check_env_read {
        hits.extend(env_read(&ctx));
    }
    // Binary entry points (`src/main.rs`, `src/bin/*`) own their terminal:
    // printing there is the whole point, regardless of the crate.
    if opts.check_raw_print && !is_bin_target(rel_path) {
        hits.extend(raw_print(&ctx));
    }
    let reduce_hits = if opts.check_unordered_reduce {
        unordered_reduce(&ctx)
    } else {
        Vec::new()
    };
    if opts.check_par_capture_race {
        hits.extend(par_capture_race(&ctx));
    }

    // Unsuppressed fold-order hazards feed the effect lattice as
    // `unordered-fp-fold` leaves (a suppressed site was argued safe and must
    // not poison callers).
    let fold_leaves: Vec<Leaf> = nondet_hits
        .iter()
        .chain(reduce_hits.iter())
        .filter(|(tok, f)| !is_suppressed(&lexed, &tree, f.rule.id(), *tok, f.line))
        .map(|&(tok, ref f)| Leaf {
            effect: Effect::UnorderedFpFold,
            tok,
            line: f.line,
            what: "unordered float fold".to_string(),
        })
        .collect();
    let analysis = callgraph::analyze_file(
        crate_name,
        rel_path,
        &lexed,
        &tree,
        &scopes,
        &leaves,
        &fold_leaves,
    );

    hits.extend(nondet_hits);
    hits.extend(reduce_hits);
    let mut findings = apply_suppressions(hits, &lexed, &tree);
    findings.sort();
    FileScan { findings, analysis }
}

/// True when an `audit:allow(<rule>)` marker covers the statement holding
/// `tok` (or the line directly above it).
fn is_suppressed(lexed: &Lexed, tree: &ItemTree, rule_id: &str, tok: usize, line: usize) -> bool {
    let stmt_lines = tree.stmt_lines(tok, line);
    callgraph::suppressed_at(&lexed.suppressions, rule_id, &stmt_lines, line)
}

/// Drop findings whose enclosing statement span (or the line directly above
/// it) carries an `audit:allow(<rule>)` marker.
fn apply_suppressions(hits: Vec<Hit>, lexed: &Lexed, tree: &ItemTree) -> Vec<Finding> {
    hits.into_iter()
        .filter(|(tok, f)| !is_suppressed(lexed, tree, f.rule.id(), *tok, f.line))
        .map(|(_, f)| f)
        .collect()
}

// ---------------------------------------------------------------------------
// Token-level soundness rules.

fn float_eq(ctx: &RuleCtx) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (i, tok) in ctx.tokens.iter().enumerate() {
        if ctx.in_test(i) || tok.kind != TokenKind::Punct {
            continue;
        }
        if (tok.text == "==" || tok.text == "!=") && float_operand(ctx.tokens, i) {
            hits.push(ctx.hit(
                Rule::FloatEq,
                i,
                format!(
                    "exact float comparison `{}` — use a tolerance or annotate audit:allow(float-eq)",
                    tok.text
                ),
            ));
        }
    }
    hits
}

fn lossy_cast(ctx: &RuleCtx) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (i, tok) in ctx.tokens.iter().enumerate() {
        if ctx.in_test(i) || tok.kind != TokenKind::Ident || tok.text != "as" {
            continue;
        }
        if let Some(next) = ctx.tokens.get(i + 1) {
            if next.kind == TokenKind::Ident && is_narrow_numeric(&next.text) {
                hits.push(ctx.hit(
                    Rule::LossyCast,
                    i,
                    format!("potentially lossy cast `as {}`", next.text),
                ));
            }
        }
    }
    hits
}

fn panicking(ctx: &RuleCtx) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (i, tok) in ctx.tokens.iter().enumerate() {
        if ctx.in_test(i) || tok.kind != TokenKind::Ident {
            continue;
        }
        let next = ctx.tokens.get(i + 1);
        let is_macro_bang = matches!(next, Some(n) if n.kind == TokenKind::Punct && n.text == "!");
        let msg = match tok.text.as_str() {
            "panic" | "unreachable" | "todo" | "unimplemented" if is_macro_bang => {
                Some(format!("`{}!` in solver library code", tok.text))
            }
            "unwrap" | "expect" => {
                let dotted = i > 0 && ctx.text(i - 1) == ".";
                let called = matches!(next, Some(n) if n.text == "(");
                if dotted && called {
                    Some(format!(
                        "`.{}()` in solver library code — return an Error instead",
                        tok.text
                    ))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(msg) = msg {
            hits.push(ctx.hit(Rule::Panicking, i, msg));
        }
    }
    hits
}

/// `raw-thread` v3: `spawns-thread` effect leaves. Call-shaped and
/// alias-resolved, so `use std::thread::spawn as sp; sp(..)` is caught at the
/// call site and `use` declarations are not flagged. Scoped `s.spawn(..)`
/// inside `thread::scope` is a method call and produces no leaf.
fn raw_thread(ctx: &RuleCtx) -> Vec<Hit> {
    ctx.leaves
        .iter()
        .filter(|l| l.effect == Effect::SpawnsThread)
        .map(|l| {
            ctx.hit(
                Rule::RawThread,
                l.tok,
                "raw `thread::spawn` — route parallelism through `snbc-par` \
                 (deterministic reduction + panic propagation) or annotate \
                 audit:allow(raw-thread)"
                    .to_string(),
            )
        })
        .collect()
}

/// `raw-instant` v3: `reads-time` effect leaves (`Instant::now` and
/// `SystemTime::now`, alias-aware).
fn raw_instant(ctx: &RuleCtx) -> Vec<Hit> {
    ctx.leaves
        .iter()
        .filter(|l| l.effect == Effect::ReadsTime)
        .map(|l| {
            ctx.hit(
                Rule::RawInstant,
                l.tok,
                "raw `Instant::now` — use `snbc_trace::Stopwatch` (or \
                 `snbc_trace::now_us`) so timings share the trace clock, or \
                 annotate audit:allow(raw-instant)"
                    .to_string(),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Scope-aware determinism + error-hygiene rules.

const NONDET_TYPES: &[&str] = &["std::collections::HashMap", "std::collections::HashSet"];

/// Methods whose call on a hash collection observes iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Chain tails that reduce an iterator into one value.
const REDUCE_METHODS: &[&str] = &["sum", "product", "fold", "reduce"];

fn nondet_iter(ctx: &RuleCtx) -> Vec<Hit> {
    let mut hits = Vec::new();
    for_each_fn(ctx, |ctx, fid| {
        let tracked = tracked_vars(ctx, fid, |ctx, i| {
            NONDET_TYPES.iter().any(|t| ctx.path_is(i, t, 1))
        });
        if tracked.is_empty() {
            return;
        }
        let scope = &ctx.tree.scopes[fid as usize];
        let (lo, hi) = scope.body;
        let mut i = lo;
        while i < hi {
            if ctx.in_test(i) || ctx.tree.enclosing_fn(i) != Some(fid) {
                i += 1;
                continue;
            }
            // `for pat in [&][mut] var {` — iterating the collection itself.
            if ctx.text(i) == "for" {
                if let Some((var_tok, var)) = for_loop_head(ctx, i, hi) {
                    if tracked.contains(var) && ctx.text(var_tok + 1) == "{" {
                        hits.push(ctx.hit(
                            Rule::NondetIter,
                            var_tok,
                            format!(
                                "iterating `{var}` (HashMap/HashSet) — order is \
                                 nondeterministic; use BTreeMap/BTreeSet or sort a \
                                 collected Vec, or annotate audit:allow(nondet-iter)"
                            ),
                        ));
                    }
                }
            }
            // `var.iter()` / `.keys()` / … anywhere in the body.
            if ctx.is_ident(i)
                && ITER_METHODS.contains(&ctx.text(i))
                && ctx.text(i + 1) == "("
                && i >= 2
                && ctx.text(i - 1) == "."
                && ctx.is_ident(i - 2)
                && tracked.contains(ctx.text(i - 2))
            {
                let var = ctx.text(i - 2).to_string();
                hits.push(ctx.hit(
                    Rule::NondetIter,
                    i,
                    format!(
                        "`{var}.{}()` iterates a HashMap/HashSet — order is \
                         nondeterministic; use BTreeMap/BTreeSet or sort a collected \
                         Vec, or annotate audit:allow(nondet-iter)",
                        ctx.text(i)
                    ),
                ));
            }
            i += 1;
        }
    });
    hits
}

fn swallowed_result(ctx: &RuleCtx) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (i, tok) in ctx.tokens.iter().enumerate() {
        if ctx.in_test(i) || tok.kind != TokenKind::Ident {
            continue;
        }
        // `let _ = expr;` (the wildcard exactly, not `_named`).
        if tok.text == "let"
            && ctx.text(i + 1) == "_"
            && matches!(ctx.text(i + 2), "=" | ":")
        {
            hits.push(ctx.hit(
                Rule::SwallowedResult,
                i,
                "`let _ =` discards a value in solver code — errors must surface as \
                 SdpError/telemetry; handle it or annotate audit:allow(swallowed-result)"
                    .to_string(),
            ));
        }
        // Bare `.ok();` as a whole statement: the Result is dropped on the floor.
        if tok.text == "ok"
            && ctx.text(i - 1) == "."
            && ctx.text(i + 1) == "("
            && ctx.text(i + 2) == ")"
            && ctx.text(i + 3) == ";"
            && stmt_discards_value(ctx, i)
        {
            hits.push(ctx.hit(
                Rule::SwallowedResult,
                i,
                "bare `.ok();` swallows a Result in solver code — handle the Err arm \
                 or annotate audit:allow(swallowed-result)"
                    .to_string(),
            ));
        }
    }
    // v2 def-use leg: a `let`-bound name that the dataflow engine shapes as
    // a live `Result` (from a Result-returning fn, a Result-typed param, or
    // a rebind of one — consumers like `?`/`.ok()` clear the shape) and that
    // is never used again after its own statement is a swallowed Result no
    // wildcard pattern can spot.
    let result_fns = dataflow::result_fns(ctx.tokens, ctx.tree);
    for_each_fn(ctx, |ctx, fid| {
        let flow = dataflow::fn_flow(ctx.tokens, ctx.tree, fid);
        let shaped = dataflow::result_shaped(&flow, ctx.tokens, &result_fns);
        for (def, hops) in flow.defs.iter().zip(shaped.iter()) {
            let Some(hops) = hops else { continue };
            if !def.is_let || def.name == "_" || ctx.in_test(def.name_tok) {
                continue;
            }
            if flow.use_after(ctx.tokens, &def.name, def.stmt_end).is_some() {
                continue;
            }
            hits.push(ctx.hit_chain(
                Rule::SwallowedResult,
                def.name_tok,
                format!(
                    "`{}` binds a Result that is never used afterwards — the Err \
                     arm is dead; handle it, drop the binding, or annotate \
                     audit:allow(swallowed-result)",
                    def.name
                ),
                ctx.chain_from_hops(
                    def.line,
                    format!("`{}` bound here, never read again", def.name),
                    hops,
                ),
            ));
        }
    });
    hits
}

/// True when the statement containing token `i` never binds or returns the
/// value (no `let`, `=`, or `return` before the call).
fn stmt_discards_value(ctx: &RuleCtx, i: usize) -> bool {
    let sid = match ctx.tree.stmt_of.get(i) {
        Some(&s) if s != crate::syntax::NO_STMT => s,
        _ => return true,
    };
    let mut j = i;
    while j > 0 && ctx.tree.stmt_of.get(j - 1) == Some(&sid) {
        j -= 1;
        if matches!(ctx.text(j), "let" | "=" | "return" | "=>") {
            return false;
        }
    }
    true
}

/// True for files compiled as binary entry points rather than library code:
/// `src/main.rs` and anything under `src/bin/`.
fn is_bin_target(rel_path: &str) -> bool {
    rel_path.ends_with("src/main.rs") || rel_path.contains("/src/bin/")
}

/// `raw-print` v1: `print!`/`println!`/`eprint!`/`eprintln!` macro invocations
/// in non-test library code. Macros cannot be renamed by `use` aliasing the
/// way functions can, so a plain text match on `ident !` is exact here (the
/// same shape `panicking` uses for `panic!`).
fn raw_print(ctx: &RuleCtx) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (i, tok) in ctx.tokens.iter().enumerate() {
        if ctx.in_test(i) || tok.kind != TokenKind::Ident {
            continue;
        }
        let is_macro_bang = matches!(
            ctx.tokens.get(i + 1),
            Some(n) if n.kind == TokenKind::Punct && n.text == "!"
        );
        if is_macro_bang
            && matches!(tok.text.as_str(), "print" | "println" | "eprint" | "eprintln")
        {
            hits.push(ctx.hit(
                Rule::RawPrint,
                i,
                format!(
                    "`{}!` in library code — route output through progress events / \
                     telemetry / the CLI layer, or annotate audit:allow(raw-print)",
                    tok.text
                ),
            ));
        }
    }
    hits
}

/// `env-read` v2: `reads-env` effect leaves (alias-aware, call-shaped).
fn env_read(ctx: &RuleCtx) -> Vec<Hit> {
    ctx.leaves
        .iter()
        .filter(|l| l.effect == Effect::ReadsEnv)
        .map(|l| {
            ctx.hit(
                Rule::EnvRead,
                l.tok,
                format!(
                    "{} outside the sanctioned config surfaces — hidden inputs break \
                     run-report reproducibility; thread it through a config/CLI flag \
                     or annotate audit:allow(env-read)",
                    l.what
                ),
            )
        })
        .collect()
}

/// `unordered-reduce` v3: provenance-aware. The dataflow engine seeds taint
/// at `par_map_collect`/`par_map_reduce` calls and follows it through `let`
/// rebinds, reassignments, and slice projections; any order-sensitive FP
/// fold (`+=` loops, `.sum()`-family chains, `mul_add` chains in loops) over
/// a tainted name fires, with the def-use chain attached.
fn unordered_reduce(ctx: &RuleCtx) -> Vec<Hit> {
    let mut hits = Vec::new();
    for_each_fn(ctx, |ctx, fid| {
        let flow = dataflow::fn_flow(ctx.tokens, ctx.tree, fid);
        let tainted = dataflow::propagate(&flow, ctx.tokens, |i| {
            let name = ctx.text(i);
            (matches!(name, "par_map_collect" | "par_map_reduce")
                && ctx.path_is(i, &format!("snbc_par::{name}"), 1))
            .then(|| format!("`{name}(…)`"))
        });
        if tainted.is_empty() {
            return;
        }
        let (lo, hi) = flow.body;
        let mut i = lo;
        while i < hi {
            if ctx.in_test(i) || ctx.tree.enclosing_fn(i) != Some(fid) {
                i += 1;
                continue;
            }
            // A `for` loop over tainted data whose body accumulates with
            // `+=` or chains `mul_add`.
            if ctx.text(i) == "for" {
                if let Some((var_tok, var)) = for_loop_head(ctx, i, hi) {
                    if let Some(hops) = tainted.get(var) {
                        let var = var.to_string();
                        // Find the loop body braces.
                        let mut b = var_tok;
                        while b < hi && ctx.text(b) != "{" {
                            b += 1;
                        }
                        let close = match_brace_tokens(ctx.tokens, b, hi);
                        let mut k = b;
                        while k + 1 < close {
                            let sink = if ctx.text(k) == "+" && ctx.text(k + 1) == "=" {
                                Some("`+=` accumulation")
                            } else if ctx.text(k) == "mul_add"
                                && ctx.text(k.wrapping_sub(1)) == "."
                                && ctx.text(k + 1) == "("
                            {
                                Some("`mul_add` chain")
                            } else {
                                None
                            };
                            if let Some(what) = sink {
                                hits.push(ctx.hit_chain(
                                    Rule::UnorderedReduce,
                                    k,
                                    format!(
                                        "{what} over `{var}`, which flows from parallel \
                                         output — route the reduction through \
                                         snbc_par::par_map_reduce's index-ordered fold \
                                         or annotate audit:allow(unordered-reduce)"
                                    ),
                                    ctx.chain_from_hops(
                                        ctx.tokens[k].line,
                                        format!("{what} over `{var}` here"),
                                        hops,
                                    ),
                                ));
                            }
                            k += 1;
                        }
                        i = close;
                        continue;
                    }
                }
            }
            // `var.iter().sum()` / `.fold(..)` chains on tainted data.
            if ctx.is_ident(i)
                && ctx.text(i.wrapping_sub(1)) != "."
                && ctx.text(i + 1) == "."
            {
                if let Some(hops) = tainted.get(ctx.text(i)) {
                    if let Some(m) = chain_has_reduce(ctx, i, hi) {
                        hits.push(ctx.hit_chain(
                            Rule::UnorderedReduce,
                            m,
                            format!(
                                "`.{}()` over `{}`, which flows from parallel output — \
                                 route the reduction through snbc_par::par_map_reduce's \
                                 index-ordered fold or annotate \
                                 audit:allow(unordered-reduce)",
                                ctx.text(m),
                                ctx.text(i)
                            ),
                            ctx.chain_from_hops(
                                ctx.tokens[m].line,
                                format!("`.{}()` fold over `{}` here", ctx.text(m), ctx.text(i)),
                                hops,
                            ),
                        ));
                    }
                }
            }
            i += 1;
        }
    });
    hits
}

/// `par-capture-race` v1: closures handed to `snbc_par` entry points must
/// not touch shared mutable state. Three hazard classes, each reported with
/// a def-use chain (hazard site → par call → captured definition):
///
/// 1. mutation of a captured name (`x = …`, `x += …`, `x.push(…)`-style via
///    field/index paths, `&mut x`);
/// 2. interior-mutability/synchronization calls on a captured name
///    (`.borrow_mut()`, `.lock()`, `.fetch_add(…)`, `.set(…)`, …);
/// 3. any reference to a name that is also passed as a `&mut` argument of
///    the *same* call — an alias of the output slice the runtime owns.
fn par_capture_race(ctx: &RuleCtx) -> Vec<Hit> {
    let mut hits = Vec::new();
    for_each_fn(ctx, |ctx, fid| {
        let flow = dataflow::fn_flow(ctx.tokens, ctx.tree, fid);
        let calls = dataflow::par_calls(ctx.tokens, flow.body, |i, canonical| {
            ctx.path_is(i, canonical, 1)
        });
        for call in calls {
            if ctx.in_test(call.tok) {
                continue;
            }
            // Idents under `&mut` among the call's own arguments: the output
            // buffers the runtime hands back out in chunks.
            let mut mut_args: BTreeSet<String> = BTreeSet::new();
            for &(alo, ahi) in &call.args {
                for k in alo..ahi {
                    if ctx.text(k) == "&" && ctx.text(k + 1) == "mut" && ctx.is_ident(k + 2) {
                        mut_args.insert(ctx.text(k + 2).to_string());
                    }
                }
            }
            for &arg in &call.args {
                let Some((params, body)) = dataflow::closure_parts(ctx.tokens, arg) else {
                    continue;
                };
                let mut locals = dataflow::local_lets(ctx.tokens, body);
                locals.extend(params);
                locals.insert("self".to_string());
                let mut seen: BTreeSet<(String, &str)> = BTreeSet::new();
                for k in body.0..body.1 {
                    // Skip method/path segments, declarations, and type
                    // positions (prev `:` covers `let x: f64 = …`, whose
                    // annotation would otherwise read as a write). `mut` as
                    // the previous token is NOT skipped: `&mut x` is exactly
                    // the capture we are looking for (`let mut` locals are
                    // filtered by the `locals` set).
                    if !ctx.is_ident(k)
                        || matches!(ctx.text(k.wrapping_sub(1)), "." | "::" | ":" | "let" | "fn")
                        || ctx.text(k + 1) == ":"
                        || ctx.text(k + 1) == "::"
                    {
                        continue;
                    }
                    let name = ctx.text(k).to_string();
                    if locals.contains(&name) {
                        continue;
                    }
                    let hazard: Option<(&str, String)> = if ctx.text(k.wrapping_sub(2)) == "&"
                        && ctx.text(k.wrapping_sub(1)) == "mut"
                    {
                        Some(("mut-borrow", format!("captures `&mut {name}`")))
                    } else if let Some(op) = capture_write_after(ctx, k, body.1) {
                        Some(("write", format!("`{op}` writes captured `{name}`")))
                    } else if let Some(m) = interior_mut_call_after(ctx, k, body.1) {
                        Some(("interior-mut", format!("`{name}.{m}(…)` pokes captured shared state")))
                    } else if mut_args.contains(&name) {
                        Some(("alias", format!("`{name}` aliases the call's `&mut {name}` output argument")))
                    } else {
                        None
                    };
                    let Some((kind, what)) = hazard else { continue };
                    if !seen.insert((name.clone(), kind)) {
                        continue;
                    }
                    let mut hops = vec![Hop {
                        line: call.line,
                        note: format!("closure passed to `{}` here", call.name),
                    }];
                    if let Some(def_line) = flow.def_line(&name) {
                        hops.push(Hop {
                            line: def_line,
                            note: format!("`{name}` defined here"),
                        });
                    }
                    hits.push(ctx.hit_chain(
                        Rule::ParCaptureRace,
                        k,
                        format!(
                            "{what} inside a closure passed to `snbc_par::{}` — \
                             workers race on it; return the value and let the \
                             index-ordered collect own the output, or annotate \
                             audit:allow(par-capture-race) with a determinism argument",
                            call.name
                        ),
                        ctx.chain_from_hops(ctx.tokens[k].line, format!("{what} here"), &hops),
                    ));
                }
            }
        }
    });
    hits
}

/// For a captured ident at `k`, detect a write through an optional
/// field/index path: `x = …`, `x += …`, `x.f = …`, `x[i] = …`. Returns the
/// operator text. Plain `==`/`<=`/`=>` are single tokens, so a bare `=` is
/// always assignment.
fn capture_write_after(ctx: &RuleCtx, k: usize, hi: usize) -> Option<&'static str> {
    let mut j = k + 1;
    // Walk a projection path: `.field`, `[index]`.
    loop {
        if ctx.text(j) == "." && ctx.is_ident(j + 1) {
            // A method call in the path is not a projection — handled by the
            // interior-mutability leg instead.
            if ctx.text(j + 2) == "(" {
                return None;
            }
            j += 2;
        } else if ctx.text(j) == "[" {
            j = match_bracket_tokens(ctx.tokens, j, hi) + 1;
        } else {
            break;
        }
    }
    if ctx.text(j) == "=" {
        return Some("=");
    }
    match ctx.text(j) {
        "+" if ctx.text(j + 1) == "=" => Some("+="),
        "-" if ctx.text(j + 1) == "=" => Some("-="),
        "*" if ctx.text(j + 1) == "=" => Some("*="),
        "/" if ctx.text(j + 1) == "=" => Some("/="),
        _ => None,
    }
}

/// Methods that mutate or synchronize through a shared handle.
const INTERIOR_MUT_METHODS: &[&str] = &[
    "borrow_mut",
    "lock",
    "write",
    "set",
    "replace",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
];

/// `name.method(` where method is an interior-mutability/sync call.
fn interior_mut_call_after<'c>(ctx: &'c RuleCtx, k: usize, hi: usize) -> Option<&'c str> {
    if ctx.text(k + 1) == "." && k + 3 < hi && ctx.text(k + 3) == "(" {
        let m = ctx.text(k + 2);
        if INTERIOR_MUT_METHODS.contains(&m) {
            return Some(m);
        }
    }
    None
}

fn match_bracket_tokens(tokens: &[Token], i: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < hi {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    hi
}

// ---------------------------------------------------------------------------
// Per-function analysis helpers.

/// Run `body` for every non-test `fn` scope in the file.
fn for_each_fn(ctx: &RuleCtx, mut body: impl FnMut(&RuleCtx, u32)) {
    for (sid, scope) in ctx.tree.scopes.iter().enumerate() {
        if scope.kind == ScopeKind::Fn && !scope.is_test {
            body(ctx, sid as u32); // audit:allow(lossy-cast) — scope ids fit u32
        }
    }
}

/// Collect local variable names in fn `fid` whose parameter type or `let`
/// statement matches `is_target` (e.g. "mentions a resolved HashMap", or
/// "calls par_map_collect").
fn tracked_vars(
    ctx: &RuleCtx,
    fid: u32,
    is_target: impl Fn(&RuleCtx, usize) -> bool,
) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    let scope = &ctx.tree.scopes[fid as usize];

    // Parameters: split the header's paren list at top-level commas; each
    // segment is `name: Type`.
    let (hdr_lo, hdr_hi) = (scope.range.0, scope.body.0);
    let mut i = hdr_lo;
    while i < hdr_hi && ctx.text(i) != "(" {
        i += 1;
    }
    if i < hdr_hi {
        let close = match_paren_tokens(ctx.tokens, i, hdr_hi);
        let mut seg_start = i + 1;
        let mut depth = 0usize;
        for j in i + 1..=close.min(hdr_hi.saturating_sub(1)) {
            let t = ctx.text(j);
            let at_end = j == close;
            if matches!(t, "(" | "[" | "<") {
                depth += 1;
            } else if matches!(t, ")" | "]" | ">") && !at_end {
                depth = depth.saturating_sub(1);
            }
            if at_end || (t == "," && depth == 0) {
                // Segment [seg_start, j).
                let name = (seg_start..j)
                    .find(|&k| ctx.is_ident(k) && !matches!(ctx.text(k), "mut" | "self"))
                    .map(|k| ctx.text(k).to_string());
                let hit = (seg_start..j).any(|k| {
                    ctx.is_ident(k) && ctx.text(k.wrapping_sub(1)) != "." && is_target(ctx, k)
                });
                if let (Some(name), true) = (name, hit) {
                    tracked.insert(name);
                }
                seg_start = j + 1;
            }
        }
    }

    // `let` bindings in the body (anonymous blocks included, nested fns not).
    let (lo, hi) = scope.body;
    let mut i = lo;
    while i < hi {
        if ctx.text(i) == "let"
            && ctx.is_ident(i)
            && ctx.tree.enclosing_fn(i) == Some(fid)
        {
            let mut n = i + 1;
            if ctx.text(n) == "mut" {
                n += 1;
            }
            if ctx.is_ident(n) && ctx.text(n) != "_" {
                let name = ctx.text(n).to_string();
                let end = let_stmt_end(ctx.tokens, i, hi);
                let hit = (i..end).any(|k| {
                    ctx.is_ident(k) && ctx.text(k.wrapping_sub(1)) != "." && is_target(ctx, k)
                });
                if hit {
                    tracked.insert(name);
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
    tracked
}

/// For a `for` token at `i`, locate the loop's iterated expression: returns
/// the token index and text of the head identifier after `in` (past `&`/
/// `mut`/parens), or None when the header is not a plain loop.
fn for_loop_head<'c>(ctx: &'c RuleCtx, i: usize, hi: usize) -> Option<(usize, &'c str)> {
    let mut j = i + 1;
    let mut depth = 0usize;
    while j < hi {
        match ctx.text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "in" if depth == 0 && ctx.is_ident(j) => break,
            "{" | ";" => return None,
            _ => {}
        }
        j += 1;
    }
    if j >= hi {
        return None;
    }
    let mut k = j + 1;
    while k < hi && matches!(ctx.text(k), "&" | "mut") {
        k += 1;
    }
    if ctx.is_ident(k) {
        Some((k, ctx.text(k)))
    } else {
        None
    }
}

/// Walk a method chain starting at identifier `i` (`v.iter().map(..).sum()`);
/// return the token index of the first reduce-family method, if any.
fn chain_has_reduce(ctx: &RuleCtx, i: usize, hi: usize) -> Option<usize> {
    let mut j = i + 1;
    while j + 1 < hi && ctx.text(j) == "." && ctx.is_ident(j + 1) {
        let m = j + 1;
        if REDUCE_METHODS.contains(&ctx.text(m)) {
            return Some(m);
        }
        j = m + 1;
        // Turbofish: `.sum::<f64>()`.
        if ctx.text(j) == "::" && ctx.text(j + 1) == "<" {
            j += 2;
            let mut angle = 1usize;
            while j < hi && angle > 0 {
                match ctx.text(j) {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        if ctx.text(j) == "(" {
            j = match_paren_tokens(ctx.tokens, j, hi) + 1;
        } else if ctx.text(j) != "." {
            break;
        }
    }
    None
}

/// Extent of a `let` statement: from the `let` to its `;` at zero
/// paren/bracket/brace depth (clamped to `hi`).
fn let_stmt_end(tokens: &[Token], i: usize, hi: usize) -> usize {
    let (mut p, mut b, mut k) = (0i32, 0i32, 0i32);
    let mut j = i;
    while j < hi {
        match tokens[j].text.as_str() {
            "(" => p += 1,
            ")" => p -= 1,
            "[" => k += 1,
            "]" => k -= 1,
            "{" => b += 1,
            "}" => b -= 1,
            ";" if p == 0 && b == 0 && k == 0 => return j + 1,
            _ => {}
        }
        if p < 0 || b < 0 || k < 0 {
            return j;
        }
        j += 1;
    }
    hi
}

fn match_brace_tokens(tokens: &[Token], i: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < hi {
        match tokens[j].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    hi
}

fn match_paren_tokens(tokens: &[Token], i: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < hi {
        match tokens[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    hi
}

/// True when either operand of the comparator at `i` is a float literal
/// (allowing a unary minus on the literal side).
fn float_operand(tokens: &[Token], i: usize) -> bool {
    let prev_float = i > 0 && tokens[i - 1].kind == TokenKind::Float;
    let next_float = match tokens.get(i + 1) {
        Some(t) if t.kind == TokenKind::Float => true,
        Some(t) if t.kind == TokenKind::Punct && t.text == "-" => {
            matches!(tokens.get(i + 2), Some(t2) if t2.kind == TokenKind::Float)
        }
        _ => false,
    };
    prev_float || next_float
}

fn is_narrow_numeric(ty: &str) -> bool {
    matches!(ty, "f32" | "i8" | "i16" | "i32" | "u8" | "u16" | "u32")
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: ScanOptions = ScanOptions {
        check_panicking: true,
        check_raw_thread: true,
        check_raw_instant: true,
        check_swallowed_result: true,
        check_env_read: true,
        check_raw_print: true,
        check_unordered_reduce: true,
        check_par_capture_race: true,
    };
    const NON_SOLVER: ScanOptions = ScanOptions {
        check_panicking: false,
        check_raw_thread: true,
        check_raw_instant: true,
        check_swallowed_result: false,
        check_env_read: true,
        check_raw_print: true,
        check_unordered_reduce: true,
        check_par_capture_race: true,
    };
    const OWNER: ScanOptions = ScanOptions {
        check_panicking: false,
        check_raw_thread: false,
        check_raw_instant: false,
        check_swallowed_result: false,
        check_env_read: false,
        check_raw_print: false,
        check_unordered_reduce: false,
        check_par_capture_race: false,
    };

    fn rules_of(src: &str, opts: ScanOptions) -> Vec<Rule> {
        scan_source("a.rs", src, opts).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_exact_float_comparisons() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\nfn g(x: f64) -> bool { 1e-9 != x }\n";
        let found = scan_source("a.rs", src, NON_SOLVER);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == Rule::FloatEq));
        assert_eq!(found[0].line, 1);
        assert_eq!(found[1].line, 2);
    }

    #[test]
    fn negative_literal_rhs_is_flagged() {
        let found = scan_source("a.rs", "fn f(x: f64) -> bool { x == -1.5 }", NON_SOLVER);
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn integer_comparisons_are_fine() {
        let found = scan_source("a.rs", "fn f(n: usize) -> bool { n == 0 && n != 3 }", LIB);
        assert!(found.is_empty());
    }

    #[test]
    fn flags_panicking_in_solver_lib_only() {
        let src = "fn f(v: Option<u8>) -> u8 { v.unwrap() }";
        assert_eq!(scan_source("a.rs", src, LIB).len(), 1);
        assert!(scan_source("a.rs", src, NON_SOLVER).is_empty());
    }

    #[test]
    fn unwrap_as_plain_ident_is_not_a_call() {
        let src = "fn unwrap() {} fn g() { unwrap(); let x = 3; x; }";
        assert!(scan_source("a.rs", src, LIB).is_empty());
    }

    #[test]
    fn flags_macros() {
        let src = "fn f() { panic!(\"x\"); unreachable!(); }";
        let found = scan_source("a.rs", src, LIB);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == Rule::Panicking));
    }

    #[test]
    fn flags_lossy_casts() {
        let src = "fn f(x: f64, n: usize) -> f32 { let y = n as u32; x as f32 }";
        let found = scan_source("a.rs", src, NON_SOLVER);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == Rule::LossyCast));
    }

    #[test]
    fn widening_casts_are_fine() {
        let src = "fn f(n: u32) -> f64 { let y = n as u64; n as f64 }";
        assert!(scan_source("a.rs", src, LIB).is_empty());
    }

    #[test]
    fn cfg_test_mod_is_skipped() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { None::<u8>.unwrap(); assert!(0.0 == 0.0); }\n}\n";
        assert!(scan_source("a.rs", src, LIB).is_empty());
    }

    #[test]
    fn code_after_test_mod_is_still_scanned() {
        let src = "#[cfg(test)]\nmod tests { fn t() {} }\nfn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
        let found = scan_source("a.rs", src, LIB);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn same_line_suppression() {
        let src = "fn f(x: f64) -> bool { x == 0.0 } // audit:allow(float-eq)";
        assert!(scan_source("a.rs", src, NON_SOLVER).is_empty());
    }

    #[test]
    fn previous_line_suppression() {
        let src = "// audit:allow(panicking)\nfn f(v: Option<u8>) -> u8 { v.unwrap() }";
        assert!(scan_source("a.rs", src, LIB).is_empty());
    }

    #[test]
    fn multiline_statement_suppression() {
        // The marker sits above the statement; the finding is two lines into
        // it. Pre-statement-span suppression this leaked through.
        let src = "fn f(v: Option<u64>) -> u64 {\n    // audit:allow(panicking)\n    v.map(|x| x + 1)\n        .unwrap()\n}\n";
        assert!(scan_source("a.rs", src, LIB).is_empty());
        // A marker for a different rule still does not suppress.
        let src2 = "fn f(v: Option<u64>) -> u64 {\n    // audit:allow(float-eq)\n    v.map(|x| x + 1)\n        .unwrap()\n}\n";
        assert_eq!(scan_source("a.rs", src2, LIB).len(), 1);
    }

    #[test]
    fn flags_raw_thread_spawn() {
        let src = "fn f() { std::thread::spawn(|| {}); }\nfn g() { thread::spawn(work); }\n";
        let found = scan_source("a.rs", src, NON_SOLVER);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == Rule::RawThread));
        assert_eq!(found[0].line, 1);
        assert_eq!(found[1].line, 2);
    }

    #[test]
    fn thread_scope_and_owner_crates_are_fine() {
        let scoped = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        assert!(scan_source("a.rs", scoped, NON_SOLVER).is_empty());
        let raw = "fn f() { std::thread::spawn(|| {}); }";
        assert!(scan_source("a.rs", raw, OWNER).is_empty());
    }

    #[test]
    fn flags_raw_instant_now() {
        let src = "fn f() { let t = std::time::Instant::now(); }\nfn g() { let t = Instant::now(); }\n";
        let found = scan_source("a.rs", src, NON_SOLVER);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == Rule::RawInstant));
    }

    #[test]
    fn instant_through_alias_is_flagged() {
        let src = "use std::time::Instant as Clock;\nfn f() { let t = Clock::now(); }";
        let found = scan_source("a.rs", src, NON_SOLVER);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::RawInstant);
    }

    #[test]
    fn foreign_instant_is_not_flagged() {
        let src = "use myclock::Instant;\nfn f() { let t = Instant::now(); }";
        assert!(scan_source("a.rs", src, NON_SOLVER).is_empty());
    }

    #[test]
    fn method_now_is_not_flagged() {
        let src = "fn f(c: Clock) { let t = c.now(); }";
        assert!(scan_source("a.rs", src, NON_SOLVER).is_empty());
    }

    #[test]
    fn nondet_iter_flags_for_loop_and_methods() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, f64>) -> f64 {\n\
                       let mut s = 0.0;\n\
                       for (_k, v) in m { s = s + v; }\n\
                       for k in m.keys() { s = s + *k as f64; }\n\
                       s\n\
                   }\n";
        let found = scan_source("a.rs", src, ScanOptions::default());
        let nd: Vec<_> = found.iter().filter(|f| f.rule == Rule::NondetIter).collect();
        assert_eq!(nd.len(), 2, "{found:?}");
        assert_eq!(nd[0].line, 4);
        assert_eq!(nd[1].line, 5);
    }

    #[test]
    fn nondet_iter_sees_through_aliases() {
        let src = "use std::collections::HashMap as Map;\n\
                   fn f() {\n\
                       let m: Map<u32, u32> = Map::new();\n\
                       for v in m.values() { drop(v); }\n\
                   }\n";
        let found = rules_of(src, ScanOptions::default());
        assert!(found.contains(&Rule::NondetIter), "{found:?}");
    }

    #[test]
    fn nondet_lookup_is_fine() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, f64>) -> Option<f64> {\n\
                       let x = m.get(&3).copied();\n\
                       m.len();\n\
                       x\n\
                   }\n";
        assert!(scan_source("a.rs", src, ScanOptions::default()).is_empty());
    }

    #[test]
    fn btree_iteration_is_fine() {
        let src = "use std::collections::BTreeMap;\n\
                   fn f(m: &BTreeMap<u32, f64>) {\n\
                       for v in m.values() { drop(v); }\n\
                   }\n";
        assert!(scan_source("a.rs", src, ScanOptions::default()).is_empty());
    }

    #[test]
    fn nondet_iter_exempt_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n  use std::collections::HashSet;\n  fn t() { let s: HashSet<u32> = HashSet::new(); for v in s.iter() { drop(v); } }\n}\n";
        assert!(scan_source("a.rs", src, ScanOptions::default()).is_empty());
    }

    #[test]
    fn swallowed_let_underscore_flagged_in_solver_code() {
        let src = "fn f() { let _ = compute(); }";
        let found = scan_source("a.rs", src, LIB);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::SwallowedResult);
        assert!(scan_source("a.rs", src, NON_SOLVER).is_empty());
    }

    #[test]
    fn named_underscore_binding_is_fine() {
        let src = "fn f() { let _keep = compute(); }";
        assert!(scan_source("a.rs", src, LIB).is_empty());
    }

    #[test]
    fn bare_ok_statement_flagged_bound_ok_fine() {
        let bare = "fn f() { fallible().ok(); }";
        let found = scan_source("a.rs", bare, LIB);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::SwallowedResult);
        let bound = "fn f() -> Option<u8> { let x = fallible().ok(); x }";
        assert!(scan_source("a.rs", bound, LIB).is_empty());
    }

    #[test]
    fn env_read_flagged_and_alias_aware() {
        let src = "fn f() -> bool { std::env::var_os(\"X\").is_some() }";
        let found = scan_source("a.rs", src, NON_SOLVER);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::EnvRead);
        let aliased = "use std::env;\nfn f() -> bool { env::var(\"X\").is_ok() }";
        assert_eq!(scan_source("a.rs", aliased, NON_SOLVER).len(), 1);
        let owner = "fn f() -> bool { std::env::var_os(\"X\").is_some() }";
        assert!(scan_source("a.rs", owner, OWNER).is_empty());
    }

    #[test]
    fn env_macro_and_local_var_fn_are_fine() {
        // `env!` is compile-time; a local fn named `var` is not std's.
        let src = "fn f() { let p = env!(\"CARGO_MANIFEST_DIR\"); var(3); p; }\nfn var(x: u8) {}";
        assert!(scan_source("a.rs", src, NON_SOLVER).is_empty());
    }

    #[test]
    fn unordered_reduce_flags_accumulation_over_par_output() {
        let src = "fn f(n: usize) -> f64 {\n\
                       let results = snbc_par::par_map_collect(n, |i| i as f64);\n\
                       let mut acc = 0.0;\n\
                       for r in &results { acc += *r; }\n\
                       acc\n\
                   }\n";
        let found = scan_source("a.rs", src, NON_SOLVER);
        let ur: Vec<_> = found.iter().filter(|f| f.rule == Rule::UnorderedReduce).collect();
        assert_eq!(ur.len(), 1, "{found:?}");
        assert_eq!(ur[0].line, 4);
    }

    #[test]
    fn unordered_reduce_flags_sum_chain() {
        let src = "fn f(n: usize) -> f64 {\n\
                       let xs = snbc_par::par_map_collect(n, |i| i as f64);\n\
                       xs.iter().sum::<f64>()\n\
                   }\n";
        let found = rules_of(src, NON_SOLVER);
        assert!(found.contains(&Rule::UnorderedReduce), "{found:?}");
    }

    #[test]
    fn ordinary_loops_and_par_crate_are_fine() {
        let plain = "fn f(xs: &[f64]) -> f64 { let mut a = 0.0; for x in xs { a += x; } a }";
        assert!(scan_source("a.rs", plain, NON_SOLVER).is_empty());
        let par_owner = "fn f(n: usize) -> f64 {\n let r = snbc_par::par_map_collect(n, |i| i as f64);\n let mut a = 0.0; for x in &r { a += x; } a }";
        assert!(scan_source("a.rs", par_owner, OWNER).is_empty());
    }

    #[test]
    fn indexed_use_of_par_output_is_fine() {
        let src = "fn f(n: usize) -> f64 {\n\
                       let r = snbc_par::par_map_collect(n, |i| i as f64);\n\
                       r[0] + r[n - 1]\n\
                   }\n";
        assert!(scan_source("a.rs", src, NON_SOLVER).is_empty());
    }

    #[test]
    fn suppression_is_rule_specific() {
        let src = "fn f(x: f64) -> bool { x == 0.0 } // audit:allow(panicking)";
        assert_eq!(scan_source("a.rs", src, NON_SOLVER).len(), 1);
    }

    #[test]
    fn new_rules_honor_suppressions() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, f64>) {\n\
                       // audit:allow(nondet-iter)\n\
                       for v in m.values() { drop(v); }\n\
                   }\n";
        assert!(scan_source("a.rs", src, ScanOptions::default()).is_empty());
    }

    #[test]
    fn renamed_imports_in_nested_use_groups_are_seen() {
        // `use std::{env, thread as th}` must register `th` → `std::thread`
        // so `th::spawn` is recognized as a raw spawn, and `env` alongside it.
        let src = "use std::{env, thread as th};\n\
                   fn f() { th::spawn(|| {}); let v = env::var(\"X\"); v.is_ok(); }";
        let found = rules_of(src, NON_SOLVER);
        assert!(found.contains(&Rule::RawThread), "{found:?}");
        assert!(found.contains(&Rule::EnvRead), "{found:?}");
        // A renamed *function* import dodges text-keyed scans entirely: the
        // call site's ident is `sp`, never `spawn`. The finding must anchor
        // at the call (line 2), not at the `use` declaration.
        let renamed_fn = "use std::{env as e, thread::spawn as sp};\n\
                          fn f() { sp(|| {}); let v = e::var(\"X\"); v.is_ok(); }";
        let found = scan_source("a.rs", renamed_fn, NON_SOLVER);
        let threads: Vec<_> = found.iter().filter(|f| f.rule == Rule::RawThread).collect();
        assert_eq!(threads.len(), 1, "{found:?}");
        assert_eq!(threads[0].line, 2, "must flag the call, not the import: {found:?}");
        assert!(found.iter().any(|f| f.rule == Rule::EnvRead && f.line == 2), "{found:?}");
    }

    #[test]
    fn raw_print_flags_all_four_macros_in_lib_code() {
        let src = "fn f() { println!(\"a\"); eprintln!(\"b\"); print!(\"c\"); eprint!(\"d\"); }";
        let found = scan_source("crates/x/src/lib.rs", src, NON_SOLVER);
        let hits: Vec<_> = found.iter().filter(|f| f.rule == Rule::RawPrint).collect();
        assert_eq!(hits.len(), 4, "{found:?}");
    }

    #[test]
    fn raw_print_skips_bin_targets_owner_crates_and_tests() {
        let src = "fn f() { println!(\"a\"); }";
        assert!(scan_source("crates/x/src/main.rs", src, NON_SOLVER).is_empty());
        assert!(scan_source("crates/x/src/bin/tool.rs", src, NON_SOLVER).is_empty());
        assert!(scan_source("crates/cli/src/lib.rs", src, OWNER).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { println!(\"a\"); }\n}\n";
        assert!(scan_source("crates/x/src/lib.rs", in_test, NON_SOLVER).is_empty());
    }

    #[test]
    fn raw_print_ignores_non_macro_idents_and_honors_suppression() {
        // A method or fn named `println` without the bang is not the macro.
        let src = "fn f(w: W) { w.println(); print(3); }\nfn print(x: u8) {}";
        assert!(scan_source("crates/x/src/lib.rs", src, NON_SOLVER).is_empty());
        let allowed =
            "fn f() {\n    // audit:allow(raw-print) — env-gated debug trace\n    eprintln!(\"dbg\");\n}";
        assert!(scan_source("crates/x/src/lib.rs", allowed, NON_SOLVER).is_empty());
    }

    #[test]
    fn rule_ids_roundtrip() {
        for info in RULES {
            assert_eq!(Rule::from_id(info.id), Some(info.rule));
            assert_eq!(info.rule.id(), info.id);
            assert!(info.rule.version() >= 1);
            assert!(!info.rationale.is_empty());
            assert!(!info.fix.is_empty());
        }
    }
}
