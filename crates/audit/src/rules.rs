//! The numerical-soundness rules applied to tokenized Rust source.
//!
//! Rule identifiers (used in baselines and `// audit:allow(...)` markers):
//!
//! | id | what it flags |
//! |---|---|
//! | `float-eq` | `==` / `!=` with a float literal on either side |
//! | `panicking` | `.unwrap()` / `.expect()` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` in solver-crate library code |
//! | `lossy-cast` | `as` casts to a numeric type narrower than 64 bits (`f32`, `i8..i32`, `u8..u32`) |
//! | `raw-thread` | `thread::spawn` outside `crates/par` / `crates/telemetry` — use `snbc-par` so determinism and panic propagation are centralized |
//! | `raw-instant` | `Instant::now` outside `crates/trace` / `crates/telemetry` / `crates/par` — use `snbc_trace::Stopwatch` / `now_us` so every timestamp shares the trace clock |
//!
//! All rules skip `#[cfg(test)]` / `#[test]` items: test code is allowed to
//! unwrap and compare exactly. Suppressions apply on the finding's line or the
//! line directly above it.

use crate::tokenizer::{tokenize, Lexed, Token, TokenKind};
use std::fmt;

/// Rule identity. `Arch` findings come from `arch.rs`, not from token scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    FloatEq,
    Panicking,
    LossyCast,
    RawThread,
    RawInstant,
    Arch,
}

impl Rule {
    pub fn id(self) -> &'static str {
        match self {
            Rule::FloatEq => "float-eq",
            Rule::Panicking => "panicking",
            Rule::LossyCast => "lossy-cast",
            Rule::RawThread => "raw-thread",
            Rule::RawInstant => "raw-instant",
            Rule::Arch => "arch",
        }
    }

    pub fn from_id(id: &str) -> Option<Rule> {
        match id {
            "float-eq" => Some(Rule::FloatEq),
            "panicking" => Some(Rule::Panicking),
            "lossy-cast" => Some(Rule::LossyCast),
            "raw-thread" => Some(Rule::RawThread),
            "raw-instant" => Some(Rule::RawInstant),
            "arch" => Some(Rule::Arch),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One violation, reported against a workspace-relative path.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Per-file scan options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanOptions {
    /// Apply the `panicking` rule (library code of solver crates only).
    pub check_panicking: bool,
    /// Apply the `raw-thread` rule (every crate except `par` and
    /// `telemetry`, which own the sanctioned threading primitives).
    pub check_raw_thread: bool,
    /// Apply the `raw-instant` rule (every crate except `trace`,
    /// `telemetry`, and `par`, which own the sanctioned clocks).
    pub check_raw_instant: bool,
}

/// Scan one source file and return its (unsuppressed) findings.
pub fn scan_source(rel_path: &str, src: &str, opts: ScanOptions) -> Vec<Finding> {
    let lexed = tokenize(src);
    let masked = test_region_mask(&lexed.tokens);
    let mut findings = Vec::new();

    for (i, tok) in lexed.tokens.iter().enumerate() {
        if masked[i] {
            continue;
        }
        match tok.kind {
            TokenKind::Punct if tok.text == "==" || tok.text == "!=" => {
                if float_operand(&lexed.tokens, i) {
                    findings.push(Finding {
                        rule: Rule::FloatEq,
                        file: rel_path.to_string(),
                        line: tok.line,
                        message: format!(
                            "exact float comparison `{}` — use a tolerance or annotate audit:allow(float-eq)",
                            tok.text
                        ),
                    });
                }
            }
            TokenKind::Ident if tok.text == "as" => {
                if let Some(next) = lexed.tokens.get(i + 1) {
                    if next.kind == TokenKind::Ident && is_narrow_numeric(&next.text) {
                        findings.push(Finding {
                            rule: Rule::LossyCast,
                            file: rel_path.to_string(),
                            line: tok.line,
                            message: format!("potentially lossy cast `as {}`", next.text),
                        });
                    }
                }
            }
            TokenKind::Ident
                if opts.check_raw_thread
                    && tok.text == "thread"
                    && raw_thread_spawn(&lexed.tokens, i) =>
            {
                findings.push(Finding {
                    rule: Rule::RawThread,
                    file: rel_path.to_string(),
                    line: tok.line,
                    message: "raw `thread::spawn` — route parallelism through `snbc-par` \
                              (deterministic reduction + panic propagation) or annotate \
                              audit:allow(raw-thread)"
                        .to_string(),
                });
            }
            TokenKind::Ident
                if opts.check_raw_instant
                    && tok.text == "Instant"
                    && raw_instant_now(&lexed.tokens, i) =>
            {
                findings.push(Finding {
                    rule: Rule::RawInstant,
                    file: rel_path.to_string(),
                    line: tok.line,
                    message: "raw `Instant::now` — use `snbc_trace::Stopwatch` (or \
                              `snbc_trace::now_us`) so timings share the trace clock, or \
                              annotate audit:allow(raw-instant)"
                        .to_string(),
                });
            }
            TokenKind::Ident if opts.check_panicking => {
                if let Some(msg) = panicking_call(&lexed.tokens, i) {
                    findings.push(Finding {
                        rule: Rule::Panicking,
                        file: rel_path.to_string(),
                        line: tok.line,
                        message: msg,
                    });
                }
            }
            _ => {}
        }
    }

    apply_suppressions(findings, &lexed)
}

/// Drop findings that carry an `audit:allow(<rule>)` marker on the same line
/// or the line directly above.
fn apply_suppressions(findings: Vec<Finding>, lexed: &Lexed) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            !lexed.suppressions.iter().any(|s| {
                s.rule == f.rule.id() && (s.line == f.line || s.line + 1 == f.line)
            })
        })
        .collect()
}

/// True when either operand of the comparator at `i` is a float literal
/// (allowing a unary minus and simple unsuffixed parens on the literal side).
fn float_operand(tokens: &[Token], i: usize) -> bool {
    let prev_float = i > 0 && tokens[i - 1].kind == TokenKind::Float;
    let next_float = match tokens.get(i + 1) {
        Some(t) if t.kind == TokenKind::Float => true,
        Some(t) if t.kind == TokenKind::Punct && t.text == "-" => {
            matches!(tokens.get(i + 2), Some(t2) if t2.kind == TokenKind::Float)
        }
        _ => false,
    };
    prev_float || next_float
}

fn is_narrow_numeric(ty: &str) -> bool {
    matches!(
        ty,
        "f32" | "i8" | "i16" | "i32" | "u8" | "u16" | "u32"
    )
}

/// True when tokens at `i` spell `thread :: spawn` (covers `thread::spawn(..)`
/// and `std::thread::spawn(..)`; scoped `s.spawn(..)` inside
/// `thread::scope` does not match and is judged by the `scope` call site).
fn raw_thread_spawn(tokens: &[Token], i: usize) -> bool {
    matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct && t.text == "::")
        && matches!(tokens.get(i + 2), Some(t) if t.kind == TokenKind::Ident && t.text == "spawn")
}

/// True when tokens at `i` spell `Instant :: now` (covers `Instant::now()`
/// and `std::time::Instant::now()`).
fn raw_instant_now(tokens: &[Token], i: usize) -> bool {
    matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct && t.text == "::")
        && matches!(tokens.get(i + 2), Some(t) if t.kind == TokenKind::Ident && t.text == "now")
}

/// Recognize panicking constructs at token `i`.
fn panicking_call(tokens: &[Token], i: usize) -> Option<String> {
    let t = &tokens[i];
    let next = tokens.get(i + 1);
    let is_macro_bang = matches!(next, Some(n) if n.kind == TokenKind::Punct && n.text == "!");
    match t.text.as_str() {
        "panic" | "unreachable" | "todo" | "unimplemented" if is_macro_bang => {
            Some(format!("`{}!` in solver library code", t.text))
        }
        "unwrap" | "expect" => {
            // Must be a method call: preceded by `.`, followed by `(`.
            let dotted =
                i > 0 && tokens[i - 1].kind == TokenKind::Punct && tokens[i - 1].text == ".";
            let called =
                matches!(next, Some(n) if n.kind == TokenKind::Punct && n.text == "(");
            if dotted && called {
                Some(format!(
                    "`.{}()` in solver library code — return an Error instead",
                    t.text
                ))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Compute a boolean mask over tokens marking `#[cfg(test)]` / `#[test]`
/// items (the attribute plus the entire following item), so rules skip test
/// code embedded in library files.
fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text == "#" && matches!(tokens.get(i + 1), Some(t) if t.text == "[") {
            // Collect the attribute tokens up to the matching `]`.
            let attr_start = i;
            let mut j = i + 2;
            let mut depth = 1usize;
            while j < tokens.len() && depth > 0 {
                match tokens[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let attr: Vec<&str> = tokens[attr_start..j].iter().map(|t| t.text.as_str()).collect();
            if is_test_attr(&attr) {
                // Mask the attribute and the following item: everything up to
                // the end of the next balanced `{...}` block, or a `;` at
                // nesting level zero (e.g. `#[cfg(test)] use ...;`).
                let mut k = j;
                let mut brace = 0usize;
                let mut entered = false;
                while k < tokens.len() {
                    match tokens[k].text.as_str() {
                        "{" => {
                            brace += 1;
                            entered = true;
                        }
                        "}" => {
                            brace = brace.saturating_sub(1);
                            if entered && brace == 0 {
                                k += 1;
                                break;
                            }
                        }
                        ";" if !entered && brace == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                for m in mask.iter_mut().take(k).skip(attr_start) {
                    *m = true;
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    mask
}

fn is_test_attr(attr: &[&str]) -> bool {
    // `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ...))]`, `#[tokio::test]`-style.
    match attr {
        ["#", "[", "test", "]"] => true,
        ["#", "[", "cfg", "(", rest @ ..] => rest.contains(&"test"),
        _ => attr.len() >= 2 && attr[attr.len() - 2] == "test",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: ScanOptions = ScanOptions {
        check_panicking: true,
        check_raw_thread: true,
        check_raw_instant: true,
    };
    const NON_SOLVER: ScanOptions = ScanOptions {
        check_panicking: false,
        check_raw_thread: true,
        check_raw_instant: true,
    };
    const THREAD_OWNER: ScanOptions = ScanOptions {
        check_panicking: false,
        check_raw_thread: false,
        check_raw_instant: false,
    };

    #[test]
    fn flags_exact_float_comparisons() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }\nfn g(x: f64) -> bool { 1e-9 != x }\n";
        let found = scan_source("a.rs", src, NON_SOLVER);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == Rule::FloatEq));
        assert_eq!(found[0].line, 1);
        assert_eq!(found[1].line, 2);
    }

    #[test]
    fn negative_literal_rhs_is_flagged() {
        let found = scan_source("a.rs", "fn f(x: f64) -> bool { x == -1.5 }", NON_SOLVER);
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn integer_comparisons_are_fine() {
        let found = scan_source("a.rs", "fn f(n: usize) -> bool { n == 0 && n != 3 }", LIB);
        assert!(found.is_empty());
    }

    #[test]
    fn flags_panicking_in_solver_lib_only() {
        let src = "fn f(v: Option<u8>) -> u8 { v.unwrap() }";
        assert_eq!(scan_source("a.rs", src, LIB).len(), 1);
        assert!(scan_source("a.rs", src, NON_SOLVER).is_empty());
    }

    #[test]
    fn unwrap_as_plain_ident_is_not_a_call() {
        let src = "fn unwrap() {} fn g() { unwrap(); let expect = 3; }";
        assert!(scan_source("a.rs", src, LIB).is_empty());
    }

    #[test]
    fn flags_macros() {
        let src = "fn f() { panic!(\"x\"); unreachable!(); }";
        let found = scan_source("a.rs", src, LIB);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == Rule::Panicking));
    }

    #[test]
    fn flags_lossy_casts() {
        let src = "fn f(x: f64, n: usize) -> f32 { let _ = n as u32; x as f32 }";
        let found = scan_source("a.rs", src, NON_SOLVER);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == Rule::LossyCast));
    }

    #[test]
    fn widening_casts_are_fine() {
        let src = "fn f(n: u32) -> f64 { let _ = n as u64; n as f64 }";
        assert!(scan_source("a.rs", src, LIB).is_empty());
    }

    #[test]
    fn cfg_test_mod_is_skipped() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { None::<u8>.unwrap(); assert!(0.0 == 0.0); }\n}\n";
        assert!(scan_source("a.rs", src, LIB).is_empty());
    }

    #[test]
    fn code_after_test_mod_is_still_scanned() {
        let src = "#[cfg(test)]\nmod tests { fn t() {} }\nfn f(v: Option<u8>) -> u8 { v.unwrap() }\n";
        let found = scan_source("a.rs", src, LIB);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn same_line_suppression() {
        let src = "fn f(x: f64) -> bool { x == 0.0 } // audit:allow(float-eq)";
        assert!(scan_source("a.rs", src, NON_SOLVER).is_empty());
    }

    #[test]
    fn previous_line_suppression() {
        let src = "// audit:allow(panicking)\nfn f(v: Option<u8>) -> u8 { v.unwrap() }";
        assert!(scan_source("a.rs", src, LIB).is_empty());
    }

    #[test]
    fn flags_raw_thread_spawn() {
        let src = "fn f() { std::thread::spawn(|| {}); }\nfn g() { thread::spawn(work); }\n";
        let found = scan_source("a.rs", src, NON_SOLVER);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == Rule::RawThread));
        assert_eq!(found[0].line, 1);
        assert_eq!(found[1].line, 2);
    }

    #[test]
    fn thread_scope_and_owner_crates_are_fine() {
        let scoped = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        assert!(scan_source("a.rs", scoped, NON_SOLVER).is_empty());
        let raw = "fn f() { std::thread::spawn(|| {}); }";
        assert!(scan_source("a.rs", raw, THREAD_OWNER).is_empty());
    }

    #[test]
    fn flags_raw_instant_now() {
        let src = "fn f() { let t = std::time::Instant::now(); }\nfn g() { let t = Instant::now(); }\n";
        let found = scan_source("a.rs", src, NON_SOLVER);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|f| f.rule == Rule::RawInstant));
        assert_eq!(found[0].line, 1);
        assert_eq!(found[1].line, 2);
    }

    #[test]
    fn instant_in_clock_owner_crates_is_fine() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(scan_source("a.rs", src, THREAD_OWNER).is_empty());
    }

    #[test]
    fn raw_instant_suppression_works() {
        let src = "// audit:allow(raw-instant)\nfn f() { let t = Instant::now(); }";
        assert!(scan_source("a.rs", src, NON_SOLVER).is_empty());
    }

    #[test]
    fn raw_thread_suppression_works() {
        let src = "// audit:allow(raw-thread)\nfn f() { std::thread::spawn(|| {}); }";
        assert!(scan_source("a.rs", src, NON_SOLVER).is_empty());
    }

    #[test]
    fn suppression_is_rule_specific() {
        let src = "fn f(x: f64) -> bool { x == 0.0 } // audit:allow(panicking)";
        assert_eq!(scan_source("a.rs", src, NON_SOLVER).len(), 1);
    }
}
