//! Architectural rules: each crate's `Cargo.toml` dependencies must respect
//! the DESIGN.md dependency DAG, and only the sanctioned external crates
//! (`rand`, `proptest`, `criterion`, `serde`) may appear.
//!
//! The DAG encoded here is the one DESIGN.md §"Workspace inventory" draws
//! (bottom-up): `trace` is the bottom-most leaf; `telemetry` and `par` sit
//! just above it and are usable from any layer;
//! `linalg` → {`lp`, `sdp`} → `sos`; `poly` → {`sos`, `interval`, `nn`,
//! `dynamics`}; `autodiff` → `nn`;
//! {`sos`,`interval`,`nn`,`dynamics`} → `core` → `baselines` → `bench`.
//! A crate may depend on any crate strictly below it in that layering; the
//! table lists the full transitive allowance per crate so the check is a
//! simple subset test.

use crate::rules::{Finding, Rule};

/// Sanctioned external dependencies (DESIGN.md: "No other dependencies").
pub const SANCTIONED_EXTERNAL: &[&str] = &["rand", "proptest", "criterion", "serde"];

/// Allowed *internal* dependencies per crate directory name.
pub fn allowed_internal(crate_dir: &str) -> Option<&'static [&'static str]> {
    const FOUNDATION: &[&str] = &[];
    // `trace` is the bottom-most observability crate; `telemetry` mirrors its
    // spans into an attached trace sink, `par` labels worker threads, and
    // `metrics` (registry + progress stream) reuses trace's canonical JSON.
    const OBSERVABILITY: &[&str] = &["snbc-trace"];
    const SOLVER_CORE: &[&str] = &[
        "snbc-linalg",
        "snbc-trace",
        "snbc-telemetry",
        "snbc-par",
    ];
    const SOS: &[&str] = &["snbc-linalg", "snbc-poly", "snbc-lp", "snbc-sdp"];
    const INTERVAL: &[&str] = &[
        "snbc-linalg",
        "snbc-poly",
        "snbc-par",
        "snbc-trace",
    ];
    const NN: &[&str] = &[
        "snbc-linalg",
        "snbc-poly",
        "snbc-autodiff",
        "snbc-interval",
    ];
    const DYNAMICS: &[&str] = &["snbc-linalg", "snbc-poly"];
    const CORE: &[&str] = &[
        "snbc-trace",
        "snbc-telemetry",
        "snbc-metrics",
        "snbc-par",
        "snbc-linalg",
        "snbc-poly",
        "snbc-autodiff",
        "snbc-lp",
        "snbc-sdp",
        "snbc-sos",
        "snbc-interval",
        "snbc-nn",
        "snbc-dynamics",
    ];
    const BASELINES: &[&str] = &[
        "snbc-trace",
        "snbc-telemetry",
        "snbc-par",
        "snbc-linalg",
        "snbc-poly",
        "snbc-autodiff",
        "snbc-lp",
        "snbc-sdp",
        "snbc-sos",
        "snbc-interval",
        "snbc-nn",
        "snbc-dynamics",
        "snbc",
    ];
    const BENCH: &[&str] = &[
        "snbc-trace",
        "snbc-telemetry",
        "snbc-metrics",
        "snbc-par",
        "snbc-linalg",
        "snbc-poly",
        "snbc-autodiff",
        "snbc-lp",
        "snbc-sdp",
        "snbc-sos",
        "snbc-interval",
        "snbc-nn",
        "snbc-dynamics",
        "snbc",
        "snbc-baselines",
        "snbc-portfolio",
    ];
    // The racing/batch layer sits directly above `snbc` (core): it drives
    // `CegisEngine` over `snbc-par` and shares core's observability stack.
    const PORTFOLIO: &[&str] = &[
        "snbc-trace",
        "snbc-telemetry",
        "snbc-metrics",
        "snbc-par",
        "snbc-poly",
        "snbc-nn",
        "snbc-dynamics",
        "snbc",
    ];
    const CLI: &[&str] = &[
        "snbc-trace",
        "snbc-telemetry",
        "snbc-metrics",
        "snbc-par",
        "snbc-linalg",
        "snbc-poly",
        "snbc-autodiff",
        "snbc-lp",
        "snbc-sdp",
        "snbc-sos",
        "snbc-interval",
        "snbc-nn",
        "snbc-dynamics",
        "snbc",
        "snbc-baselines",
        "snbc-portfolio",
    ];

    Some(match crate_dir {
        "linalg" | "poly" | "autodiff" | "audit" | "trace" => FOUNDATION,
        "telemetry" | "par" | "metrics" => OBSERVABILITY,
        "lp" | "sdp" => SOLVER_CORE,
        "sos" => SOS,
        "interval" => INTERVAL,
        "nn" => NN,
        "dynamics" => DYNAMICS,
        "core" => CORE,
        "portfolio" => PORTFOLIO,
        "baselines" => BASELINES,
        "bench" => BENCH,
        "cli" => CLI,
        _ => return None,
    })
}

/// A dependency entry parsed out of a `Cargo.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEntry {
    pub name: String,
    /// `dependencies`, `dev-dependencies`, or `build-dependencies`.
    pub section: String,
    pub line: usize,
}

/// Minimal line-based `Cargo.toml` parser: section headers + dependency names.
/// Handles `name = "ver"`, `name.workspace = true`, `name = { ... }`, and
/// `package = "renamed"` inside inline tables.
pub fn parse_dependencies(manifest: &str) -> Vec<DepEntry> {
    let mut deps = Vec::new();
    let mut section = String::new();
    for (idx, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        let dep_section = match section.as_str() {
            "dependencies" | "dev-dependencies" | "build-dependencies" => section.clone(),
            // `[target.'cfg(..)'.dependencies]` and workspace tables are out
            // of scope for this workspace; treat everything else as non-dep.
            _ => continue,
        };
        if let Some(eq) = line.find('=') {
            let key = line[..eq].trim();
            // `rand.workspace = true` → dep name `rand`.
            let name = key.split('.').next().unwrap_or(key).trim_matches('"');
            if name.is_empty() {
                continue;
            }
            // If an inline table renames the package, audit the real package.
            let real = line
                .find("package")
                .and_then(|p| line[p..].find('"').map(|q| p + q + 1))
                .and_then(|start| {
                    line[start..]
                        .find('"')
                        .map(|end| line[start..start + end].to_string())
                })
                .unwrap_or_else(|| name.to_string());
            deps.push(DepEntry {
                name: real,
                section: dep_section,
                line: idx + 1,
            });
        }
    }
    deps
}

/// Audit one crate manifest against the DAG and the sanctioned-externals set.
pub fn check_manifest(crate_dir: &str, rel_path: &str, manifest: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(allowed) = allowed_internal(crate_dir) else {
        findings.push(Finding {
            rule: Rule::Arch,
            file: rel_path.to_string(),
            line: 1,
            message: format!(
                "crate `{crate_dir}` is not part of the DESIGN.md dependency DAG — add it to snbc-audit's arch table"
            ),
            chain: Vec::new(),
        });
        return findings;
    };
    for dep in parse_dependencies(manifest) {
        let internal = dep.name.starts_with("snbc");
        if dep.section == "build-dependencies" {
            findings.push(Finding {
                rule: Rule::Arch,
                file: rel_path.to_string(),
                line: dep.line,
                message: format!("build-dependency `{}` — the workspace bans build scripts", dep.name),
                chain: Vec::new(),
            });
            continue;
        }
        if internal {
            if !allowed.contains(&dep.name.as_str()) {
                findings.push(Finding {
                    rule: Rule::Arch,
                    file: rel_path.to_string(),
                    line: dep.line,
                    message: format!(
                        "dependency `{}` violates the DESIGN.md DAG for crate `{}`",
                        dep.name, crate_dir
                    ),
                    chain: Vec::new(),
                });
            }
        } else if !SANCTIONED_EXTERNAL.contains(&dep.name.as_str()) {
            findings.push(Finding {
                rule: Rule::Arch,
                file: rel_path.to_string(),
                line: dep.line,
                message: format!(
                    "external dependency `{}` is not sanctioned (allowed: {})",
                    dep.name,
                    SANCTIONED_EXTERNAL.join(", ")
                ),
                chain: Vec::new(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_workspace_and_inline_deps() {
        let manifest = r#"
[package]
name = "x"

[dependencies]
snbc-linalg.workspace = true
rand = { version = "0.8" }

[dev-dependencies]
proptest.workspace = true
"#;
        let deps = parse_dependencies(manifest);
        let names: Vec<_> = deps.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["snbc-linalg", "rand", "proptest"]);
        assert_eq!(deps[2].section, "dev-dependencies");
    }

    #[test]
    fn lp_may_use_linalg_but_not_poly() {
        let ok = "[dependencies]\nsnbc-linalg.workspace = true\n";
        assert!(check_manifest("lp", "crates/lp/Cargo.toml", ok).is_empty());
        let bad = "[dependencies]\nsnbc-poly.workspace = true\n";
        let findings = check_manifest("lp", "crates/lp/Cargo.toml", bad);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("violates the DESIGN.md DAG"));
    }

    #[test]
    fn unsanctioned_external_dep_is_flagged() {
        let bad = "[dependencies]\nnalgebra = \"0.32\"\n";
        let findings = check_manifest("linalg", "crates/linalg/Cargo.toml", bad);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("not sanctioned"));
    }

    #[test]
    fn build_dependencies_are_banned() {
        let bad = "[build-dependencies]\ncc = \"1\"\n";
        let findings = check_manifest("poly", "crates/poly/Cargo.toml", bad);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("build-dependency"));
    }

    #[test]
    fn unknown_crate_is_flagged() {
        let findings = check_manifest("mystery", "crates/mystery/Cargo.toml", "[dependencies]\n");
        assert_eq!(findings.len(), 1);
    }
}
