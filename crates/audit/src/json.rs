//! A minimal JSON value model with a canonical, byte-stable encoder and a
//! strict parser — the same hand-rolled approach as `snbc-telemetry`'s
//! encoder, kept local because `snbc-audit` depends on nothing.
//!
//! The encoder emits no insignificant whitespace and preserves object key
//! *insertion order* (objects are `Vec<(String, Value)>`), so
//! `render(parse(render(v))) == render(v)` byte-for-byte. Numbers are
//! integers only: every quantity the audit reports (lines, counts, versions)
//! is integral, and refusing floats keeps round-trips exact.

use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Canonical rendering: no whitespace, insertion-ordered keys.
pub fn render(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v);
    out
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // audit:allow(lossy-cast) — char→u32 is a lossless widening.
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32); // audit:allow(lossy-cast)
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Strict parse of a complete JSON document (trailing garbage is an error).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect_lit(bytes, pos, "null", Value::Null),
        Some(b't') => expect_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => expect_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let val = parse_value(bytes, pos)?;
                pairs.push((key, val));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            if bytes[*pos] == b'-' {
                *pos += 1;
            }
            while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
                *pos += 1;
            }
            if matches!(bytes.get(*pos), Some(b'.') | Some(b'e') | Some(b'E')) {
                return Err(format!(
                    "float at byte {start}: the audit schema is integer-only"
                ));
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<i64>().ok())
                .map(Value::Int)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        Some(c) => Err(format!("unexpected byte `{}` at {pos}", *c as char, pos = *pos)),
    }
}

fn expect_lit(bytes: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    let start = *pos;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}", pos = *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}", pos = *pos))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad codepoint at byte {pos}", pos = *pos))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            c if c < 0x80 => {
                out.push(c as char);
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8: copy the full character.
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("bad utf8 at byte {pos}", pos = *pos))?;
                let ch = s.chars().next().unwrap_or('\u{FFFD}');
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err(format!("unterminated string starting at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let doc = obj(vec![
            ("schema", Value::Str("snbc-audit/2".into())),
            ("count", Value::Int(3)),
            ("ok", Value::Bool(true)),
            ("none", Value::Null),
            (
                "items",
                Value::Arr(vec![Value::Int(1), Value::Str("a\"b\\c\nd".into())]),
            ),
        ]);
        let text = render(&doc);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(render(&parsed), text);
    }

    #[test]
    fn key_order_is_preserved() {
        let text = r#"{"z":1,"a":2}"#;
        let v = parse(text).unwrap();
        assert_eq!(render(&v), text);
    }

    #[test]
    fn control_chars_escape_and_parse() {
        let doc = Value::Str("tab\tnl\nquote\"bs\\bell\u{7}".into());
        let text = render(&doc);
        assert_eq!(parse(&text).unwrap(), doc);
        assert_eq!(render(&parse(&text).unwrap()), text);
    }

    #[test]
    fn floats_are_rejected() {
        assert!(parse("1.5").is_err());
        assert!(parse("[1e9]").is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":1,}").is_err());
    }

    #[test]
    fn negative_ints_parse() {
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
    }
}
