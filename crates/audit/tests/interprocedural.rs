//! Integration tests for the interprocedural effect engine: multi-crate
//! fixtures audited through [`snbc_audit::audit_files`], checking that the
//! contract rules fire with full call chains and that the chains survive the
//! JSON and SARIF round-trips.

use snbc_audit::audit_files;
use snbc_audit::rules::{Finding, Rule};
use snbc_audit::sarif::{parse_json_report, parse_sarif, render_json_report, render_sarif, Report};

fn of_rule(findings: &[Finding], rule: Rule) -> Vec<&Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn transitive_env_read_reaches_the_solver_contract() {
    // lp (contract crate) → dynamics helper → std::env::var. The env read is
    // two hops away from the solver stack; the boundary edge must be flagged
    // with the full chain down to the leaf.
    let report = audit_files(&[
        (
            "dynamics",
            "crates/dynamics/src/helper.rs",
            "pub fn tuning() -> f64 {\n    peek_env()\n}\npub fn peek_env() -> f64 {\n    std::env::var(\"SNBC_TUNING\").map(|v| v.parse().unwrap_or(0.0)).unwrap_or(0.0)\n}\n",
        ),
        (
            "lp",
            "crates/lp/src/lib.rs",
            "pub fn solve() -> f64 {\n    snbc_dynamics::tuning() * 2.0\n}\n",
        ),
    ]);
    let hits = of_rule(&report.findings, Rule::SolverEffects);
    assert_eq!(hits.len(), 1, "findings: {:?}", report.findings);
    let f = hits[0];
    assert_eq!(f.file, "crates/lp/src/lib.rs");
    assert!(
        f.message.contains("reads-env"),
        "message: {}",
        f.message
    );
    // Chain: lp::solve calls tuning → tuning calls peek_env → env leaf.
    assert!(f.chain.len() >= 3, "chain: {:?}", f.chain);
    assert!(f.chain[0].note.contains("solve"), "chain: {:?}", f.chain);
    assert!(
        f.chain.last().unwrap().note.contains("std::env::var"),
        "chain: {:?}",
        f.chain
    );
    // The terminal lister prints the chain as indented `via` hops (frame 0 is
    // the flagged site itself and is not repeated).
    let listing = snbc_audit::render_findings(&report.findings);
    assert!(listing.contains("    via "), "listing:\n{listing}");
    assert!(
        listing.contains("std::env::var"),
        "listing:\n{listing}"
    );
}

#[test]
fn chains_survive_json_and_sarif_roundtrips_from_a_real_audit() {
    let report = audit_files(&[
        (
            "dynamics",
            "crates/dynamics/src/lib.rs",
            "pub fn peek() -> bool {\n    std::env::var(\"X\").is_ok()\n}\n",
        ),
        (
            "sos",
            "crates/sos/src/lib.rs",
            "pub fn certify() -> bool {\n    snbc_dynamics::peek()\n}\n",
        ),
    ]);
    assert_eq!(of_rule(&report.findings, Rule::SolverEffects).len(), 1);
    let doc = Report::new(report.files_scanned, report.findings.clone());

    let json = render_json_report(&doc);
    let back = parse_json_report(&json).unwrap();
    assert_eq!(render_json_report(&back), json, "canonical JSON bytes");
    assert_eq!(back.findings[0].chain, report.findings[0].chain);

    let sarif = render_sarif(&doc);
    assert!(sarif.contains("codeFlows"), "every effect-contract finding carries a codeFlow");
    let back = parse_sarif(&sarif).unwrap();
    assert_eq!(render_sarif(&back), sarif, "canonical SARIF bytes");
    assert_eq!(back.findings[0].chain, report.findings[0].chain);
}

#[test]
fn mutual_recursion_converges_and_still_carries_effects() {
    // even/odd mutual recursion where the odd side reads the clock: the SCC
    // must converge (no hang) and both members must carry the effect into
    // the contract check on the solver boundary.
    let report = audit_files(&[
        (
            "baselines",
            "crates/baselines/src/lib.rs",
            "pub fn even(n: u64) -> bool {\n    if n == 0 { true } else { odd(n - 1) }\n}\npub fn odd(n: u64) -> bool {\n    let _t = std::time::Instant::now();\n    if n == 0 { false } else { even(n - 1) }\n}\n",
        ),
        (
            "sdp",
            "crates/sdp/src/lib.rs",
            "pub fn schedule(n: u64) -> bool {\n    snbc_baselines::even(n)\n}\n",
        ),
    ]);
    let hits = of_rule(&report.findings, Rule::SolverEffects);
    assert_eq!(hits.len(), 1, "findings: {:?}", report.findings);
    assert!(hits[0].message.contains("reads-time"), "message: {}", hits[0].message);
}

#[test]
fn trait_methods_resolve_conservatively_by_name_and_arity() {
    // `step(&self, x)` is called through a trait object; the engine cannot
    // know the concrete impl, so every same-name-same-arity method is a
    // candidate — including the one that spawns a thread.
    let report = audit_files(&[
        (
            "baselines",
            "crates/baselines/src/lib.rs",
            "pub struct Fast;\nimpl Fast {\n    pub fn step(&self, x: f64) -> f64 { x + 1.0 }\n}\npub struct Racy;\nimpl Racy {\n    pub fn step(&self, x: f64) -> f64 {\n        std::thread::spawn(move || x);\n        x\n    }\n}\n",
        ),
        (
            "interval",
            "crates/interval/src/lib.rs",
            "pub fn tighten(x: f64) -> f64 {\n    helper_step(x)\n}\nfn helper_step(x: f64) -> f64 {\n    snbc_baselines::Fast.step(x)\n}\n",
        ),
    ]);
    // The method call unions both `step` impls, so interval transitively
    // reaches spawns-thread through the conservative candidate set.
    let hits = of_rule(&report.findings, Rule::SolverEffects);
    assert_eq!(hits.len(), 1, "findings: {:?}", report.findings);
    assert!(
        hits[0].message.contains("spawns-thread"),
        "message: {}",
        hits[0].message
    );
}

#[test]
fn hot_function_with_transitive_allocation_is_flagged() {
    let report = audit_files(&[(
        "core",
        "crates/core/src/lib.rs",
        "// audit:hot\npub fn kernel(xs: &mut [f64]) {\n    for x in xs.iter_mut() {\n        *x = helper(*x);\n    }\n}\nfn helper(x: f64) -> f64 {\n    let v = vec![x; 4];\n    v.iter().sum()\n}\n",
    )]);
    let hits = of_rule(&report.findings, Rule::HotAlloc);
    assert_eq!(hits.len(), 1, "findings: {:?}", report.findings);
    let f = hits[0];
    assert!(f.message.contains("kernel"), "message: {}", f.message);
    assert!(!f.chain.is_empty(), "transitive finding must carry a chain");
}

#[test]
fn par_callee_with_hidden_env_read_is_flagged() {
    let report = audit_files(&[(
        "core",
        "crates/core/src/lib.rs",
        "pub fn fan_out(n: usize) -> Vec<f64> {\n    snbc_par::par_map_collect(n, |i| weight(i))\n}\nfn weight(i: usize) -> f64 {\n    std::env::var(\"W\").map(|v| v.parse().unwrap_or(0.0)).unwrap_or(i as f64)\n}\n",
    )]);
    let hits = of_rule(&report.findings, Rule::ParCallee);
    assert_eq!(hits.len(), 1, "findings: {:?}", report.findings);
    assert!(
        hits[0].message.contains("reads-env"),
        "message: {}",
        hits[0].message
    );
}

#[test]
fn suppressed_leaf_does_not_propagate_into_contracts() {
    // The allow on the env read masks the leaf at harvest, so nothing
    // reaches the lp boundary.
    let report = audit_files(&[
        (
            "dynamics",
            "crates/dynamics/src/lib.rs",
            "pub fn tuning() -> f64 {\n    // audit:allow(env-read) — documented debug knob\n    std::env::var(\"SNBC_TUNING\").map(|v| v.parse().unwrap_or(0.0)).unwrap_or(0.0)\n}\n",
        ),
        (
            "lp",
            "crates/lp/src/lib.rs",
            "pub fn solve() -> f64 {\n    snbc_dynamics::tuning()\n}\n",
        ),
    ]);
    assert!(
        of_rule(&report.findings, Rule::SolverEffects).is_empty(),
        "findings: {:?}",
        report.findings
    );
    assert!(of_rule(&report.findings, Rule::EnvRead).is_empty());
}

#[test]
fn graph_in_report_matches_the_fixture() {
    let report = audit_files(&[(
        "lp",
        "crates/lp/src/lib.rs",
        "pub fn a() -> f64 { b() }\nfn b() -> f64 { 1.0 }\n",
    )]);
    assert_eq!(report.graph.nodes.len(), 2);
    let json = snbc_audit::graphout::render_graph_json(&report.graph);
    assert!(json.contains("\"symbol\":\"lp::a\""), "{json}");
}
