//! End-to-end tests of the audit engine against fixture sources with known
//! violations, exercising rule hits, suppressions, and baseline diffing.

use snbc_audit::baseline;
use snbc_audit::rules::{scan_source, Finding, Rule, ScanOptions};

const VIOLATIONS: &str = include_str!("fixtures/violations.rs");
const SUPPRESSED: &str = include_str!("fixtures/suppressed.rs");
const CLEAN: &str = include_str!("fixtures/clean.rs");

const SOLVER_OPTS: ScanOptions = ScanOptions {
    check_panicking: true,
    check_raw_thread: true,
    check_raw_instant: true,
};

fn hits(src: &str, opts: ScanOptions) -> Vec<(Rule, usize)> {
    scan_source("fixture.rs", src, opts)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn violations_fixture_exact_rule_and_line_hits() {
    let expected = vec![
        (Rule::FloatEq, 7),
        (Rule::FloatEq, 11),
        (Rule::FloatEq, 15),
        (Rule::LossyCast, 19),
        (Rule::LossyCast, 19),
        (Rule::Panicking, 27),
        (Rule::Panicking, 31),
        (Rule::Panicking, 35),
        (Rule::Panicking, 39),
    ];
    let mut got = hits(VIOLATIONS, SOLVER_OPTS);
    got.sort_by_key(|&(r, l)| (l, r));
    let mut want = expected;
    want.sort_by_key(|&(r, l)| (l, r));
    assert_eq!(got, want);
}

#[test]
fn panicking_rule_only_applies_to_solver_crates() {
    let got = hits(VIOLATIONS, ScanOptions::default());
    assert!(
        got.iter().all(|&(rule, _)| rule != Rule::Panicking),
        "panicking findings present with check_panicking=false: {got:?}"
    );
    // Float/cast rules still fire.
    assert!(got.iter().any(|&(rule, _)| rule == Rule::FloatEq));
    assert!(got.iter().any(|&(rule, _)| rule == Rule::LossyCast));
}

#[test]
fn suppressions_silence_only_the_named_rule_nearby() {
    let got = hits(SUPPRESSED, SOLVER_OPTS);
    // The two deliberately-ineffective allows leave exactly these findings.
    assert_eq!(got, vec![(Rule::FloatEq, 17), (Rule::FloatEq, 23)]);
}

#[test]
fn clean_fixture_has_zero_findings() {
    let got = hits(CLEAN, SOLVER_OPTS);
    assert!(got.is_empty(), "unexpected findings: {got:?}");
}

#[test]
fn baseline_roundtrip_tolerates_existing_debt() {
    let findings = scan_source("fixture.rs", VIOLATIONS, SOLVER_OPTS);
    assert!(!findings.is_empty());
    // A baseline generated from the current findings diffs clean.
    let map = baseline::parse(&baseline::render(&findings)).unwrap();
    assert!(baseline::diff(&findings, &map).is_clean());
}

#[test]
fn baseline_catches_regressions_and_reports_improvements() {
    let findings = scan_source("fixture.rs", VIOLATIONS, SOLVER_OPTS);
    let map = baseline::parse(&baseline::render(&findings)).unwrap();

    // One extra float-eq beyond the tolerated count is a regression.
    let mut more = findings.clone();
    more.push(Finding {
        rule: Rule::FloatEq,
        file: "fixture.rs".to_string(),
        line: 999,
        message: String::new(),
    });
    let d = baseline::diff(&more, &map);
    assert_eq!(d.regressions.len(), 1);
    let (rule, ref file, current, tolerated) = d.regressions[0];
    assert_eq!(rule, Rule::FloatEq);
    assert_eq!(file, "fixture.rs");
    assert_eq!(current, tolerated + 1);

    // A finding in a file with no baseline entry is also a regression.
    let fresh = vec![Finding {
        rule: Rule::Panicking,
        file: "other.rs".to_string(),
        line: 1,
        message: String::new(),
    }];
    assert!(!baseline::diff(&fresh, &map).is_clean());

    // Fixing findings shows up as improvements, never as failures.
    let fewer: Vec<Finding> = findings
        .iter()
        .filter(|f| f.rule != Rule::Panicking)
        .cloned()
        .collect();
    let d = baseline::diff(&fewer, &map);
    assert!(d.is_clean());
    assert_eq!(d.improvements.len(), 1);
    assert_eq!(d.improvements[0].0, Rule::Panicking);
}
