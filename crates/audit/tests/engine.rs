//! End-to-end tests of the audit engine against fixture sources with known
//! violations, exercising rule hits, scope/alias awareness, suppressions,
//! machine formats, and baseline diffing.

use snbc_audit::baseline;
use snbc_audit::rules::{scan_source, Finding, Rule, ScanOptions};
use snbc_audit::sarif::{
    parse_json_report, parse_sarif, render_json_report, render_sarif, Report,
};

const VIOLATIONS: &str = include_str!("fixtures/violations.rs");
const SUPPRESSED: &str = include_str!("fixtures/suppressed.rs");
const CLEAN: &str = include_str!("fixtures/clean.rs");
const NONDET_ITER: &str = include_str!("fixtures/nondet_iter.rs");
const SWALLOWED: &str = include_str!("fixtures/swallowed_result.rs");
const ENV_READ: &str = include_str!("fixtures/env_read.rs");
const UNORDERED: &str = include_str!("fixtures/unordered_reduce.rs");
const PAR_RACE: &str = include_str!("fixtures/par_capture_race.rs");

/// Options a solver crate (lp/sdp/sos/linalg/interval) is scanned with.
const SOLVER_OPTS: ScanOptions = ScanOptions {
    check_panicking: true,
    check_raw_thread: true,
    check_raw_instant: true,
    check_swallowed_result: true,
    check_env_read: true,
    check_raw_print: true,
    check_unordered_reduce: true,
    check_par_capture_race: true,
};

/// Options a non-solver, non-owner crate is scanned with.
const NON_SOLVER_OPTS: ScanOptions = ScanOptions {
    check_panicking: false,
    check_raw_thread: true,
    check_raw_instant: true,
    check_swallowed_result: false,
    check_env_read: true,
    check_raw_print: true,
    check_unordered_reduce: true,
    check_par_capture_race: true,
};

fn hits(src: &str, opts: ScanOptions) -> Vec<(Rule, usize)> {
    scan_source("fixture.rs", src, opts)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn violations_fixture_exact_rule_and_line_hits() {
    let expected = vec![
        (Rule::FloatEq, 7),
        (Rule::FloatEq, 11),
        (Rule::FloatEq, 15),
        (Rule::LossyCast, 19),
        (Rule::LossyCast, 19),
        (Rule::Panicking, 27),
        (Rule::Panicking, 31),
        (Rule::Panicking, 35),
        (Rule::Panicking, 39),
    ];
    let mut got = hits(VIOLATIONS, SOLVER_OPTS);
    got.sort_by_key(|&(r, l)| (l, r));
    let mut want = expected;
    want.sort_by_key(|&(r, l)| (l, r));
    assert_eq!(got, want);
}

#[test]
fn panicking_rule_only_applies_to_solver_crates() {
    let got = hits(VIOLATIONS, ScanOptions::default());
    assert!(
        got.iter().all(|&(rule, _)| rule != Rule::Panicking),
        "panicking findings present with check_panicking=false: {got:?}"
    );
    // Float/cast rules still fire.
    assert!(got.iter().any(|&(rule, _)| rule == Rule::FloatEq));
    assert!(got.iter().any(|&(rule, _)| rule == Rule::LossyCast));
}

#[test]
fn suppressions_silence_only_the_named_rule_on_the_statement() {
    let got = hits(SUPPRESSED, SOLVER_OPTS);
    // Everything is suppressed — including a finding two lines into a
    // multi-line statement — except the wrong-rule and blank-line-gap cases
    // and the closure-scoping regression: an `audit:allow` *inside* a closure
    // body must not silence findings on the enclosing statement's own lines.
    assert_eq!(
        got,
        vec![
            (Rule::FloatEq, 25),
            (Rule::FloatEq, 31),
            (Rule::LossyCast, 35),
        ]
    );
}

#[test]
fn clean_fixture_has_zero_findings() {
    let got = hits(CLEAN, SOLVER_OPTS);
    assert!(got.is_empty(), "unexpected findings: {got:?}");
}

#[test]
fn nondet_iter_fixture_exact_hits() {
    let got = hits(NONDET_ITER, NON_SOLVER_OPTS);
    assert_eq!(
        got,
        vec![
            (Rule::NondetIter, 11),
            (Rule::NondetIter, 20),
            (Rule::NondetIter, 25),
        ],
        "positive sites flagged; lookups, BTreeMap, suppressed and test code exempt"
    );
}

#[test]
fn swallowed_result_fixture_exact_hits() {
    let got = hits(SWALLOWED, SOLVER_OPTS);
    assert_eq!(
        got,
        vec![
            (Rule::SwallowedResult, 7),
            (Rule::SwallowedResult, 11),
            (Rule::SwallowedResult, 15),
            (Rule::SwallowedResult, 19),
            (Rule::SwallowedResult, 24),
        ]
    );
    // The rule is scoped to solver crates.
    assert!(hits(SWALLOWED, NON_SOLVER_OPTS).is_empty());
}

#[test]
fn env_read_fixture_exact_hits() {
    let got = hits(ENV_READ, NON_SOLVER_OPTS);
    assert_eq!(got, vec![(Rule::EnvRead, 9), (Rule::EnvRead, 13)]);
    // Env-owner crates (par/cli/audit) scan with the check off.
    let owner = ScanOptions { check_env_read: false, ..NON_SOLVER_OPTS };
    assert!(hits(ENV_READ, owner).is_empty());
}

#[test]
fn unordered_reduce_fixture_exact_hits() {
    let got = hits(UNORDERED, NON_SOLVER_OPTS);
    assert_eq!(
        got,
        vec![
            (Rule::UnorderedReduce, 10),
            (Rule::UnorderedReduce, 17),
            (Rule::UnorderedReduce, 23),
            (Rule::UnorderedReduce, 53),
            (Rule::UnorderedReduce, 60),
            (Rule::UnorderedReduce, 67),
        ]
    );
    // snbc-par itself scans with the check off.
    let par = ScanOptions { check_unordered_reduce: false, ..NON_SOLVER_OPTS };
    assert!(hits(UNORDERED, par).is_empty());
}

#[test]
fn unordered_reduce_findings_carry_def_use_chains() {
    let findings = scan_source("fixture.rs", UNORDERED, NON_SOLVER_OPTS);
    // The rebound-sum case (sink @ 53): sink frame first, then the def-use
    // chain walking `zs` ← `ys` ← `parts` ← par_map_collect.
    let f = findings.iter().find(|f| f.line == 53).expect("sink @ 53");
    let lines: Vec<usize> = f.chain.iter().map(|fr| fr.line).collect();
    assert_eq!(lines, vec![53, 52, 51, 50], "sink, then defs newest-first");
    assert!(f.chain[3].note.contains("par_map_collect"), "{}", f.chain[3].note);
    // The single-hop cases still carry (sink, binding) chains.
    let f = findings.iter().find(|f| f.line == 10).expect("sink @ 10");
    assert_eq!(
        f.chain.iter().map(|fr| fr.line).collect::<Vec<_>>(),
        vec![10, 7]
    );
}

#[test]
fn par_capture_race_fixture_exact_hits() {
    let got = hits(PAR_RACE, NON_SOLVER_OPTS);
    assert_eq!(
        got,
        vec![
            (Rule::ParCaptureRace, 9),
            (Rule::ParCaptureRace, 16),
            (Rule::ParCaptureRace, 22),
            (Rule::ParCaptureRace, 28),
            (Rule::ParCaptureRace, 34),
            (Rule::ParCaptureRace, 40),
        ]
    );
    // snbc-par's own internals scan with the check off.
    let par = ScanOptions { check_par_capture_race: false, ..NON_SOLVER_OPTS };
    assert!(hits(PAR_RACE, par).is_empty());
}

#[test]
fn par_capture_race_findings_carry_capture_chains() {
    let findings = scan_source("fixture.rs", PAR_RACE, NON_SOLVER_OPTS);
    // The captured-accumulator case: hazard site, the par call it escapes
    // into, and the captured variable's definition.
    let f = findings.iter().find(|f| f.line == 9).expect("hazard @ 9");
    assert_eq!(
        f.chain.iter().map(|fr| fr.line).collect::<Vec<_>>(),
        vec![9, 8, 7],
        "hazard, par call, capture definition"
    );
    assert!(f.chain[1].note.contains("par_for_chunks"), "{}", f.chain[1].note);
    assert!(f.message.contains("snbc_par::par_for_chunks"), "{}", f.message);
}

#[test]
fn machine_formats_roundtrip_fixture_findings() {
    let findings = scan_source("fixture.rs", VIOLATIONS, SOLVER_OPTS);
    let report = Report::new(1, findings);
    let json = render_json_report(&report);
    assert_eq!(parse_json_report(&json).unwrap(), report);
    assert_eq!(render_json_report(&parse_json_report(&json).unwrap()), json);
    let sarif = render_sarif(&report);
    assert_eq!(parse_sarif(&sarif).unwrap(), report);
    assert_eq!(render_sarif(&parse_sarif(&sarif).unwrap()), sarif);
}

#[test]
fn committed_baseline_parses_and_is_current() {
    // The checked-in workspace baseline must stay parseable, stale-free, and
    // empty: every finding in tree is fixed or carries a justified allow.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../audit-baseline.txt");
    let text = std::fs::read_to_string(path).expect("read audit-baseline.txt");
    let b = baseline::parse(&text).expect("committed baseline must parse");
    assert_eq!(b.format_version, baseline::FORMAT_VERSION);
    assert!(b.stale_rules().is_empty(), "stale: {:?}", b.stale_rules());
    assert!(
        b.entries.is_empty(),
        "the workspace baseline must stay empty; entries: {:?}",
        b.entries
    );
}

#[test]
fn v1_baseline_upgrades_cleanly() {
    // A legacy v1 file (entry lines only) is grandfathered at current rule
    // versions, and re-rendering it produces v2.
    let findings = scan_source("fixture.rs", VIOLATIONS, SOLVER_OPTS);
    let v1 = {
        // Render entries without the v2 header, mimicking the old format.
        let b = baseline::parse(&baseline::render(&findings)).unwrap();
        let mut out = String::new();
        for ((rule, file), count) in &b.entries {
            out.push_str(&format!("{} {} {}\n", rule.id(), file, count));
        }
        out
    };
    let upgraded = baseline::parse(&v1).unwrap();
    assert_eq!(upgraded.format_version, 1);
    assert!(upgraded.stale_rules().is_empty());
    assert!(baseline::diff(&findings, &upgraded).is_clean());
    // Round-trip through render: now v2, same tolerances.
    let v2 = baseline::render(&findings);
    let b2 = baseline::parse(&v2).unwrap();
    assert_eq!(b2.format_version, 2);
    assert_eq!(b2.entries, upgraded.entries);
}

#[test]
fn baseline_roundtrip_tolerates_existing_debt() {
    let findings = scan_source("fixture.rs", VIOLATIONS, SOLVER_OPTS);
    assert!(!findings.is_empty());
    // A baseline generated from the current findings diffs clean.
    let b = baseline::parse(&baseline::render(&findings)).unwrap();
    assert!(baseline::diff(&findings, &b).is_clean());
}

#[test]
fn baseline_catches_regressions_and_reports_improvements() {
    let findings = scan_source("fixture.rs", VIOLATIONS, SOLVER_OPTS);
    let b = baseline::parse(&baseline::render(&findings)).unwrap();

    // One extra float-eq beyond the tolerated count is a regression.
    let mut more = findings.clone();
    more.push(Finding {
        rule: Rule::FloatEq,
        file: "fixture.rs".to_string(),
        line: 999,
        message: String::new(),
        chain: Vec::new(),
    });
    let d = baseline::diff(&more, &b);
    assert_eq!(d.regressions.len(), 1);
    let (rule, ref file, current, tolerated) = d.regressions[0];
    assert_eq!(rule, Rule::FloatEq);
    assert_eq!(file, "fixture.rs");
    assert_eq!(current, tolerated + 1);

    // A finding in a file with no baseline entry is also a regression.
    let fresh = vec![Finding {
        rule: Rule::Panicking,
        file: "other.rs".to_string(),
        line: 1,
        message: String::new(),
        chain: Vec::new(),
    }];
    assert!(!baseline::diff(&fresh, &b).is_clean());

    // Fixing findings shows up as improvements, never as failures.
    let fewer: Vec<Finding> = findings
        .iter()
        .filter(|f| f.rule != Rule::Panicking)
        .cloned()
        .collect();
    let d = baseline::diff(&fewer, &b);
    assert!(d.is_clean());
    assert_eq!(d.improvements.len(), 1);
    assert_eq!(d.improvements[0].0, Rule::Panicking);
}
