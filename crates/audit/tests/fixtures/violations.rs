//! Audit fixture: deliberate violations at known lines.
//!
//! Never compiled — read by `tests/engine.rs`, which asserts the exact
//! (rule, line) set below. Keep line numbers in sync when editing.

pub fn float_eq_hit(a: f64) -> bool {
    a == 0.5 // expect: float-eq @ 7
}

pub fn float_ne_hit(a: f64) -> bool {
    1.0e-3 != a // expect: float-eq @ 11
}

pub fn negative_literal_hit(a: f64) -> bool {
    a == -2.5 // expect: float-eq @ 15
}

pub fn lossy_hits(v: f64, n: i64) -> (f32, i32) {
    (v as f32, n as i32) // expect: lossy-cast @ 19 (twice)
}

pub fn widening_is_fine(x: u32, v: f32) -> (u64, f64) {
    (x as u64, v as f64)
}

pub fn unwrap_hit(v: Option<u64>) -> u64 {
    v.unwrap() // expect: panicking @ 27
}

pub fn expect_hit(v: Option<u64>) -> u64 {
    v.expect("boom") // expect: panicking @ 31
}

pub fn panic_hit() {
    panic!("boom") // expect: panicking @ 35
}

pub fn unreachable_hit() {
    unreachable!() // expect: panicking @ 39
}

#[cfg(test)]
mod tests {
    // Test regions are exempt from every rule.
    #[test]
    fn exempt() {
        let _ = 1.0 == 2.0;
        let _ = 3.0f64 as f32;
        Some(1u64).unwrap();
        panic!("fine in tests");
    }
}
