//! Audit fixture: `nondet-iter` positives and exemptions.
//!
//! Never compiled — read by `tests/engine.rs`, which asserts the exact
//! (rule, line) set below. Keep line numbers in sync when editing.

use std::collections::HashMap as Map;
use std::collections::{BTreeMap, HashSet};

pub fn iterates_param(m: &Map<u32, f64>) -> f64 {
    let mut s = 0.0;
    for (_k, v) in m {
        // expect: nondet-iter @ 11 (for-loop over the map itself)
        s += v;
    }
    s
}

pub fn iterates_local_keys() -> Vec<u32> {
    let m: Map<u32, u32> = Map::new();
    m.keys().copied().collect() // expect: nondet-iter @ 20 (order reaches output)
}

pub fn set_iter(s: &HashSet<u32>) -> usize {
    let mut n = 0;
    for v in s.iter() {
        // expect: nondet-iter @ 25
        n = n + (*v as usize);
    }
    n
}

pub fn lookup_is_fine(m: &Map<u32, f64>) -> Option<f64> {
    m.get(&1).copied()
}

pub fn btree_is_fine(m: &BTreeMap<u32, f64>) -> f64 {
    let mut s = 0.0;
    for (_k, v) in m {
        s += v;
    }
    s
}

pub fn suppressed(m: &Map<u32, f64>) -> usize {
    // audit:allow(nondet-iter)
    for _v in m.values() {}
    m.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exempt_in_tests() {
        let m: Map<u32, u32> = Map::new();
        for v in m.values() {
            let _x = v;
        }
    }
}
