//! Audit fixture: zero findings expected.

pub fn tolerant_eq(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}

pub fn integer_eq(a: i64, b: i64) -> bool {
    a == b
}

pub fn widening_casts(x: u32, v: f32) -> (u64, f64) {
    (u64::from(x), f64::from(v))
}

pub fn operators_in_strings() -> &'static str {
    // Tokenizer must not find violations inside strings or comments:
    // x == 0.5, v.unwrap(), panic!("no"), 1.0 as f32.
    "x == 0.5 && v.unwrap() && (1.0 as f32)"
}

pub fn raw_string() -> &'static str {
    r#"y != 2.5 "nested" .expect("nope")"#
}

pub fn fallible(v: Option<u64>) -> Result<u64, &'static str> {
    v.ok_or("empty")
}
