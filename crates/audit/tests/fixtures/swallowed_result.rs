//! Audit fixture: `swallowed-result` positives and exemptions.
//!
//! Never compiled — read by `tests/engine.rs`, which asserts the exact
//! (rule, line) set below. Keep line numbers in sync when editing.

pub fn let_underscore(r: Result<u32, String>) {
    let _ = r; // expect: swallowed-result @ 7
}

pub fn bare_ok(r: Result<u32, String>) {
    r.ok(); // expect: swallowed-result @ 11
}

pub fn named_discard_is_fine(r: Result<u32, String>) {
    let _unused = r;
}

pub fn bound_ok_is_fine(r: Result<u32, String>) -> Option<u32> {
    let v = r.ok();
    v
}

pub fn returned_ok_is_fine(r: Result<u32, String>) -> Option<u32> {
    return r.ok();
}

pub fn suppressed(r: Result<u32, String>) {
    // audit:allow(swallowed-result)
    let _ = r;
    r.ok(); // audit:allow(swallowed-result)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_tests() {
        let _ = helper();
        helper_result().ok();
    }

    fn helper() -> u32 {
        1
    }

    fn helper_result() -> Result<u32, String> {
        Ok(1)
    }
}
