//! Audit fixture: `swallowed-result` positives and exemptions.
//!
//! Never compiled — read by `tests/engine.rs`, which asserts the exact
//! (rule, line) set below. Keep line numbers in sync when editing.

pub fn let_underscore(r: Result<u32, String>) {
    let _ = r; // expect: swallowed-result @ 7
}

pub fn bare_ok(r: Result<u32, String>) {
    r.ok(); // expect: swallowed-result @ 11
}

pub fn named_discard(r: Result<u32, String>) {
    let _unused = r; // expect: swallowed-result @ 15 (v2 def-use: dead Result binding)
}

pub fn dead_call_binding() {
    let status = solve_step(); // expect: swallowed-result @ 19
}

pub fn dead_rebind(r: Result<u32, String>) {
    let first = r;
    let second = first; // expect: swallowed-result @ 24 (shape follows the rebind)
}

pub fn bound_ok_is_fine(r: Result<u32, String>) -> Option<u32> {
    let v = r.ok();
    v
}

pub fn returned_ok_is_fine(r: Result<u32, String>) -> Option<u32> {
    return r.ok();
}

pub fn question_mark_is_fine() -> Result<u32, String> {
    let v = solve_step()?;
    Ok(v + 1)
}

pub fn used_later_is_fine() -> Result<u32, String> {
    let status = solve_step();
    status
}

pub fn suppressed(r: Result<u32, String>) {
    // audit:allow(swallowed-result)
    let _ = r;
    r.ok(); // audit:allow(swallowed-result)
    let _dead = solve_step(); // audit:allow(swallowed-result)
}

fn solve_step() -> Result<u32, String> {
    Ok(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_tests() {
        let _ = helper();
        helper_result().ok();
    }

    fn helper() -> u32 {
        1
    }

    fn helper_result() -> Result<u32, String> {
        Ok(1)
    }
}
