//! Audit fixture: `unordered-reduce` positives and exemptions.
//!
//! Never compiled — read by `tests/engine.rs`, which asserts the exact
//! (rule, line) set below. Keep line numbers in sync when editing.

pub fn for_accumulation(n: usize) -> f64 {
    let parts = snbc_par::par_map_collect(n, |i| i as f64);
    let mut acc = 0.0;
    for p in &parts {
        acc += p; // expect: unordered-reduce @ 10
    }
    acc
}

pub fn sum_chain(n: usize) -> f64 {
    let parts = snbc_par::par_map_collect(n, |i| i as f64);
    parts.iter().sum::<f64>() // expect: unordered-reduce @ 17
}

pub fn through_import(n: usize) -> f64 {
    use snbc_par::par_map_collect;
    let parts = par_map_collect(n, |i| i as f64);
    parts.iter().map(|x| x * 2.0).sum() // expect: unordered-reduce @ 23
}

pub fn indexed_use_is_fine(n: usize) -> f64 {
    let parts = snbc_par::par_map_collect(n, |i| i as f64);
    parts[0] + parts[n - 1]
}

pub fn serial_loop_is_fine(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += x;
    }
    acc
}

pub fn suppressed(n: usize) -> u64 {
    let parts = snbc_par::par_map_collect(n, |i| i as u64);
    let mut acc = 0;
    for p in &parts {
        // audit:allow(unordered-reduce)
        acc += p;
    }
    acc
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_tests() {
        let parts = snbc_par::par_map_collect(3, |i| i as f64);
        let _total: f64 = parts.iter().sum();
    }
}
