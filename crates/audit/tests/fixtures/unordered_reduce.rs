//! Audit fixture: `unordered-reduce` positives and exemptions.
//!
//! Never compiled — read by `tests/engine.rs`, which asserts the exact
//! (rule, line) set below. Keep line numbers in sync when editing.

pub fn for_accumulation(n: usize) -> f64 {
    let parts = snbc_par::par_map_collect(n, |i| i as f64);
    let mut acc = 0.0;
    for p in &parts {
        acc += p; // expect: unordered-reduce @ 10
    }
    acc
}

pub fn sum_chain(n: usize) -> f64 {
    let parts = snbc_par::par_map_collect(n, |i| i as f64);
    parts.iter().sum::<f64>() // expect: unordered-reduce @ 17
}

pub fn through_import(n: usize) -> f64 {
    use snbc_par::par_map_collect;
    let parts = par_map_collect(n, |i| i as f64);
    parts.iter().map(|x| x * 2.0).sum() // expect: unordered-reduce @ 23
}

pub fn indexed_use_is_fine(n: usize) -> f64 {
    let parts = snbc_par::par_map_collect(n, |i| i as f64);
    parts[0] + parts[n - 1]
}

pub fn serial_loop_is_fine(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += x;
    }
    acc
}

pub fn suppressed(n: usize) -> u64 {
    let parts = snbc_par::par_map_collect(n, |i| i as u64);
    let mut acc = 0;
    for p in &parts {
        // audit:allow(unordered-reduce)
        acc += p;
    }
    acc
}

pub fn rebound_sum(n: usize) -> f64 {
    let parts = snbc_par::par_map_collect(n, |i| i as f64);
    let ys = parts;
    let zs = ys;
    zs.iter().sum::<f64>() // expect: unordered-reduce @ 53 (taint follows rebinds)
}

pub fn mul_add_loop(n: usize) -> f64 {
    let ws = snbc_par::par_map_collect(n, |i| i as f64);
    let mut acc = 0.0;
    for w in &ws {
        acc = acc.mul_add(2.0, *w); // expect: unordered-reduce @ 60 (mul_add chain)
    }
    acc
}

pub fn reduce_output_flows(n: usize) -> f64 {
    let partials = snbc_par::par_map_reduce(n, |i| vec![i as f64], std::ops::Add::add);
    partials.iter().sum::<f64>() // expect: unordered-reduce @ 67 (par_map_reduce seeds too)
}

pub fn scalar_index_drops_taint(n: usize) -> f64 {
    let parts = snbc_par::par_map_collect(n, |i| i as f64);
    let head = parts[0];
    let tail = [head, head];
    tail.iter().sum::<f64>() // fine: a scalar projection breaks the taint chain
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_tests() {
        let parts = snbc_par::par_map_collect(3, |i| i as f64);
        let _total: f64 = parts.iter().sum();
    }
}
