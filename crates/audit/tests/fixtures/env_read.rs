//! Audit fixture: `env-read` positives and alias handling.
//!
//! Never compiled — read by `tests/engine.rs`, which asserts the exact
//! (rule, line) set below. Keep line numbers in sync when editing.

use std::env;

pub fn direct() -> bool {
    std::env::var_os("SNBC_X").is_some() // expect: env-read @ 9
}

pub fn through_module_import() -> bool {
    env::var("SNBC_X").is_ok() // expect: env-read @ 13
}

pub fn env_macro_is_fine() -> &'static str {
    env!("CARGO_PKG_NAME")
}

pub fn local_fn_named_var_is_fine() -> u32 {
    var(3)
}

fn var(x: u32) -> u32 {
    x
}

pub fn suppressed() -> bool {
    // audit:allow(env-read)
    std::env::var("SNBC_DEBUG").is_ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_tests() {
        assert!(std::env::var("PATH").is_ok());
    }
}
