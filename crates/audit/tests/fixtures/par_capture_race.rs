//! Audit fixture: `par-capture-race` positives and exemptions.
//!
//! Never compiled — read by `tests/engine.rs`, which asserts the exact
//! (rule, line) set below. Keep line numbers in sync when editing.

pub fn captured_accumulator(n: usize) -> f64 {
    let mut acc = 0.0;
    snbc_par::par_for_chunks(n, 16, |lo, hi| {
        acc += (hi - lo) as f64; // expect: par-capture-race @ 9 (write to capture)
    });
    acc
}

pub fn cell_counter(n: usize, hits: &std::cell::Cell<u64>) {
    snbc_par::par_for_chunks(n, 16, |lo, hi| {
        hits.set(hits.get() + (hi - lo) as u64); // expect: par-capture-race @ 16
    });
}

pub fn locked_push(n: usize, out: &std::sync::Mutex<Vec<u64>>) {
    snbc_par::par_for_chunks(n, 16, |lo, _hi| {
        out.lock().push(lo as u64); // expect: par-capture-race @ 22 (lock in worker)
    });
}

pub fn atomic_ticks(n: usize, ticks: &std::sync::atomic::AtomicU64) {
    snbc_par::par_for_chunks(n, 16, |lo, hi| {
        ticks.fetch_add((hi - lo) as u64, Ordering::Relaxed); // expect: par-capture-race @ 28
    });
}

pub fn mut_borrow_capture(n: usize, buf: &mut [f64]) {
    snbc_par::par_for_chunks(n, 16, |lo, hi| {
        renorm(&mut buf[lo..hi]); // expect: par-capture-race @ 34 (&mut capture)
    });
}

pub fn output_alias(n: usize, out: &mut [f64]) {
    snbc_par::par_for_chunks_scratch(n, 16, &mut out, |lo, hi| {
        out[lo] + out[hi - 1] // expect: par-capture-race @ 40 (aliases the &mut arg)
    });
}

pub fn pure_map_is_fine(n: usize, scale: f64) -> Vec<f64> {
    snbc_par::par_map_collect(n, |i| i as f64 * scale)
}

pub fn closure_local_mut_is_fine(n: usize) -> Vec<f64> {
    snbc_par::par_map_collect(n, |i| {
        let mut s = 0.0;
        s += i as f64;
        s
    })
}

pub fn suppressed(n: usize) -> f64 {
    let mut acc = 0.0;
    snbc_par::par_for_chunks(n, 16, |lo, hi| {
        // audit:allow(par-capture-race)
        acc += (hi - lo) as f64;
    });
    acc
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_in_tests() {
        let mut acc = 0.0;
        snbc_par::par_for_chunks(4, 2, |lo, hi| {
            acc += (hi - lo) as f64;
        });
        assert!(acc >= 0.0);
    }
}
