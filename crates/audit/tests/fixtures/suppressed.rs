//! Audit fixture: the same violation kinds, all suppressed.
//!
//! Suppressions count on the finding's own line or the line directly above.

pub fn all_suppressed(a: f64, v: Option<u64>) -> u64 {
    // audit:allow(float-eq)
    let _ = a == 0.5;
    let _ = a != 1.5; // audit:allow(float-eq)
    // audit:allow(lossy-cast)
    let _ = a as f32;
    // audit:allow(panicking)
    v.unwrap()
}

pub fn wrong_rule_does_not_suppress(a: f64) -> bool {
    // audit:allow(panicking)
    a == 0.25 // expect: float-eq @ 17 (the allow above names another rule)
}

pub fn too_far_does_not_suppress(a: f64) -> bool {
    // audit:allow(float-eq)

    a == 0.75 // expect: float-eq @ 23 (blank line between allow and finding)
}
