//! Audit fixture: the same violation kinds, all suppressed.
//!
//! Suppressions attach to the enclosing statement: a marker on any line of
//! the statement, or on the line directly above it, silences the named rule.

pub fn all_suppressed(a: f64, v: Option<u64>) -> f32 {
    // audit:allow(float-eq)
    let _b = a == 0.5;
    let _c = a != 1.5; // audit:allow(float-eq)
    // audit:allow(lossy-cast)
    let f = a as f32;
    // audit:allow(panicking)
    v.unwrap();
    f
}

pub fn multiline_statement_suppressed(v: Option<u64>) -> u64 {
    // audit:allow(panicking)
    v.map(|x| x + 1)
        .unwrap()
}

pub fn wrong_rule_does_not_suppress(a: f64) -> bool {
    // audit:allow(panicking)
    a == 0.25 // expect: float-eq @ 25 (the allow above names another rule)
}

pub fn too_far_does_not_suppress(a: f64) -> bool {
    // audit:allow(float-eq)

    a == 0.75 // expect: float-eq @ 31 (blank line between allow and finding)
}

pub fn closure_allow_stays_inside(bias: f64) -> Vec<f32> {
    snbc_par::par_map_collect(bias as f32 as usize, |i| { // expect: lossy-cast @ 35
        // audit:allow(lossy-cast)
        (i as f64 + bias) as f32
    })
}
