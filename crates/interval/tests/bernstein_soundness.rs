//! Property-based soundness of the Bernstein range bounds: for random
//! polynomials and boxes, the enclosure must contain dense-grid samples and
//! must never be looser than necessary in a way that breaks the B&B verdicts.

use proptest::prelude::*;
use snbc_interval::{bernstein_range, eval_range, BranchAndBound, Interval, RangeTightening, Verdict};
use snbc_poly::{monomial_basis, Polynomial};

fn random_poly(coeffs: &[f64]) -> Polynomial {
    let basis = monomial_basis(2, 3);
    Polynomial::from_coeffs(&coeffs[..basis.len()], &basis)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bernstein_contains_grid_samples(
        coeffs in proptest::collection::vec(-2.0f64..2.0, 10),
        lo0 in -2.0f64..0.0, w0 in 0.1f64..2.0,
        lo1 in -2.0f64..0.0, w1 in 0.1f64..2.0,
    ) {
        let p = random_poly(&coeffs);
        let bx = [Interval::new(lo0, lo0 + w0), Interval::new(lo1, lo1 + w1)];
        let r = bernstein_range(&p, &bx);
        for i in 0..=6 {
            for j in 0..=6 {
                let x = [
                    lo0 + w0 * i as f64 / 6.0,
                    lo1 + w1 * j as f64 / 6.0,
                ];
                let v = p.eval(&x);
                prop_assert!(
                    r.lo() - 1e-9 <= v && v <= r.hi() + 1e-9,
                    "{r} misses p({x:?}) = {v}"
                );
            }
        }
    }

    #[test]
    fn bernstein_never_looser_than_needed_vs_interval(
        coeffs in proptest::collection::vec(-2.0f64..2.0, 10),
    ) {
        // Both bounds are sound; their intersection is therefore sound, and
        // on [0,1]² the Bernstein bound is contained in the interval bound
        // hull up to rounding (a weak sanity relation that catches transform
        // bugs producing wild coefficients).
        let p = random_poly(&coeffs);
        let bx = [Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)];
        let b = bernstein_range(&p, &bx);
        let i = eval_range(&p, &bx);
        prop_assert!(b.lo() >= i.lo() - 1e-9, "bernstein {b} below interval {i}");
        prop_assert!(b.hi() <= i.hi() + 1e-9, "bernstein {b} above interval {i}");
    }

    #[test]
    fn verdicts_agree_between_tightenings(
        coeffs in proptest::collection::vec(-1.0f64..1.0, 10),
        shift in 0.5f64..2.0,
    ) {
        // p + shift − min_grid(p) is comfortably positive: both tightening
        // modes must prove it (no false Violated/Unknown flips).
        let p0 = random_poly(&coeffs);
        let bx = vec![Interval::new(-1.0, 1.0); 2];
        let mut min_grid = f64::INFINITY;
        for i in 0..=8 {
            for j in 0..=8 {
                let x = [-1.0 + 0.25 * i as f64, -1.0 + 0.25 * j as f64];
                min_grid = min_grid.min(p0.eval(&x));
            }
        }
        let p = &p0 + &Polynomial::constant(shift + 2.0 - min_grid);
        for tightening in [RangeTightening::Interval, RangeTightening::Bernstein] {
            let bb = BranchAndBound {
                tightening,
                ..Default::default()
            };
            let rep = bb.check_at_least(&p, &bx, &[], 0.0);
            prop_assert_eq!(
                rep.verdict, Verdict::Holds,
                "{:?} failed to prove a clearly positive polynomial", tightening
            );
        }
    }
}
