//! Bernstein-form range bounds for polynomials over boxes.
//!
//! The Bernstein coefficients of a polynomial on a box enclose its range —
//! usually much more tightly than term-wise interval evaluation, because the
//! Bernstein basis respects the dependency between occurrences of the same
//! variable. This is the classic sharpening used inside polynomial SMT/branch
//! -and-bound engines (and the subject of the paper's reference [13]).
//!
//! The transform is exponential in the number of variables (there are
//! `Π(dᵢ+1)` coefficients), so [`bernstein_range`] bails out to the plain
//! interval extension beyond a size cap — exactly the trade-off a δ-complete
//! solver makes.

use snbc_poly::Polynomial;

use crate::{eval_range, Interval};

/// Cap on the Bernstein tensor size before falling back to interval
/// evaluation.
const MAX_TENSOR: usize = 1 << 18;

/// Range bound of `p` over the box via Bernstein coefficients, falling back
/// to [`eval_range`] when the coefficient tensor would exceed the size cap.
///
/// The result always contains the true range; for polynomials with strong
/// variable dependencies it is typically far tighter than the term-wise
/// interval bound.
///
/// # Panics
///
/// Panics if the box has fewer coordinates than the polynomial's variables.
///
/// # Example
///
/// ```
/// use snbc_interval::{bernstein_range, eval_range, Interval};
/// use snbc_poly::Polynomial;
///
/// // (x − y)² on [0,1]²: true range [0, 1]; term-wise intervals say [−2, 2],
/// // the Bernstein enclosure gives [−0.5, 1].
/// let p: Polynomial = "(x0 - x1)^2".parse().unwrap();
/// let bx = [Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)];
/// let b = bernstein_range(&p, &bx);
/// let i = eval_range(&p, &bx);
/// assert!(b.contains(0.0) && b.contains(1.0)); // encloses the true range
/// assert!(i.lo() < b.lo() && b.hi() < i.hi()); // strictly tighter
/// ```
pub fn bernstein_range(p: &Polynomial, domain: &[Interval]) -> Interval {
    assert!(
        domain.len() >= p.nvars(),
        "box has {} coordinates but polynomial uses {}",
        domain.len(),
        p.nvars()
    );
    let n = p.nvars();
    if n == 0 {
        let c = p.constant_term();
        return Interval::new(c, c);
    }
    // Per-variable degrees.
    let mut degs = vec![0usize; n];
    for (m, _) in p.iter() {
        for (i, &e) in m.exponents().iter().enumerate() {
            degs[i] = degs[i].max(e as usize);
        }
    }
    let tensor_size: usize = degs.iter().map(|d| d + 1).product();
    if tensor_size == 0 || tensor_size > MAX_TENSOR {
        return eval_range(p, domain);
    }

    // Affine map onto [0,1]^n: xᵢ = loᵢ + wᵢ·tᵢ.
    let mut q = p.clone();
    for i in 0..n {
        let lo = domain[i].lo();
        let w = domain[i].width();
        let sub = &Polynomial::constant(lo) + &Polynomial::var(i).scale(w);
        q = q.substitute(i, &sub);
    }

    // Dense power-basis tensor a[α] (row-major over the mixed-radix index).
    let strides: Vec<usize> = {
        let mut s = vec![1usize; n];
        for i in (0..n - 1).rev() {
            s[i] = s[i + 1] * (degs[i + 1] + 1);
        }
        s
    };
    let mut coeffs = vec![0.0f64; tensor_size];
    for (m, c) in q.iter() {
        let mut idx = 0usize;
        let mut in_range = true;
        for i in 0..n {
            let e = m.exponent(i) as usize;
            if e > degs[i] {
                in_range = false;
                break;
            }
            idx += e * strides[i];
        }
        if in_range {
            coeffs[idx] += c;
        }
    }

    // Axis-wise power→Bernstein transform:
    // b_β = Σ_{α ≤ β} [C(β,α)/C(d,α)]·a_α, independently per axis.
    for axis in 0..n {
        let d = degs[axis];
        if d == 0 {
            continue;
        }
        let stride = strides[axis];
        let len = d + 1;
        // Precompute C(β,α)/C(d,α).
        let mut w = vec![vec![0.0f64; len]; len];
        for (beta, row) in w.iter_mut().enumerate() {
            for (alpha, v) in row.iter_mut().enumerate().take(beta + 1) {
                *v = binomial(beta, alpha) / binomial(d, alpha);
            }
        }
        // Apply along the axis for every fixed choice of the other indices.
        let outer = tensor_size / len;
        let mut line = vec![0.0f64; len];
        for block in 0..outer {
            // Compute the base offset of this line in the tensor.
            let mut rem = block;
            let mut base = 0usize;
            for i in 0..n {
                if i == axis {
                    continue;
                }
                let size = degs[i] + 1;
                let digit = rem % size;
                rem /= size;
                base += digit * strides[i];
            }
            for (k, l) in line.iter_mut().enumerate() {
                *l = coeffs[base + k * stride];
            }
            for beta in 0..len {
                let mut acc = 0.0;
                for (alpha, &lv) in line.iter().enumerate().take(beta + 1) {
                    acc += w[beta][alpha] * lv;
                }
                coeffs[base + beta * stride] = acc;
            }
        }
    }

    let lo = coeffs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = coeffs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Interval::new(lo, hi)
}

fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut num = 1.0f64;
    let mut den = 1.0f64;
    for i in 0..k {
        num *= (n - i) as f64;
        den *= (i + 1) as f64;
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sound(p: &Polynomial, bx: &[Interval]) {
        let r = bernstein_range(p, bx);
        let steps = 8;
        let n = bx.len();
        let mut idx = vec![0usize; n];
        loop {
            let x: Vec<f64> = (0..n)
                .map(|i| bx[i].lo() + bx[i].width() * idx[i] as f64 / steps as f64)
                .collect();
            let v = p.eval(&x);
            assert!(
                r.lo() - 1e-9 <= v && v <= r.hi() + 1e-9,
                "{r} misses p({x:?}) = {v}"
            );
            // Increment the mixed-radix counter.
            let mut i = 0;
            loop {
                if i == n {
                    return;
                }
                idx[i] += 1;
                if idx[i] <= steps {
                    break;
                }
                idx[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn exact_for_linear_polynomials() {
        let p: Polynomial = "2*x0 - 3*x1 + 1".parse().unwrap();
        let bx = [Interval::new(-1.0, 2.0), Interval::new(0.0, 1.0)];
        let r = bernstein_range(&p, &bx);
        // Linear: Bernstein coefficients are the vertex values — exact range.
        assert!((r.lo() - (2.0 * -1.0 - 3.0 + 1.0)).abs() < 1e-12);
        assert!((r.hi() - (2.0 * 2.0 - 0.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn tighter_than_interval_on_dependency() {
        // (x − y)² over [0,1]²: interval arithmetic sees x² − 2xy + y² and
        // loses the dependency; Bernstein is exact.
        let p: Polynomial = "(x0 - x1)^2".parse().unwrap();
        let bx = [Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)];
        let b = bernstein_range(&p, &bx);
        let i = eval_range(&p, &bx);
        assert!(b.lo() > i.lo() + 0.5, "bernstein {b} vs interval {i}");
        assert!(b.width() < i.width());
    }

    #[test]
    fn sound_on_random_style_polynomials() {
        for (expr, bx) in [
            (
                "x0^3 - 2*x0*x1 + x1^2 - 0.5",
                vec![Interval::new(-1.0, 1.5), Interval::new(-0.5, 1.0)],
            ),
            (
                "(x0 + x1 - 1)^2*(x0 - 0.3) + 0.1*x1",
                vec![Interval::new(-2.0, 0.5), Interval::new(0.0, 2.0)],
            ),
            (
                "x0*x1*x2 - x2^2 + 0.25",
                vec![
                    Interval::new(-1.0, 1.0),
                    Interval::new(-1.0, 1.0),
                    Interval::new(0.0, 2.0),
                ],
            ),
        ] {
            let p: Polynomial = expr.parse().unwrap();
            assert_sound(&p, &bx);
        }
    }

    #[test]
    fn constant_polynomial() {
        let p = Polynomial::constant(3.5);
        let bx = [Interval::new(-1.0, 1.0)];
        let r = bernstein_range(&p, &bx);
        assert_eq!((r.lo(), r.hi()), (3.5, 3.5));
    }

    #[test]
    fn falls_back_beyond_cap() {
        // Degree-4 in 12 variables: 5^12 ≈ 244M ≫ cap, must not blow up.
        let terms: Vec<String> = (0..12).map(|i| format!("x{i}^4")).collect();
        let p: Polynomial = format!("{} + 1", terms.join("+")).parse().unwrap();
        let bx = vec![Interval::new(-1.0, 1.0); 12];
        let r = bernstein_range(&p, &bx);
        assert!(r.contains(1.0) && r.contains(13.0));
    }
}
