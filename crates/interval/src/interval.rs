use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use snbc_poly::Polynomial;

/// A closed interval `[lo, hi]` with conservative (containment-preserving)
/// arithmetic.
///
/// This is the basic abstract domain of the δ-complete verifier; see the
/// [crate docs](crate) for context.
///
/// # Example
///
/// ```
/// use snbc_interval::Interval;
///
/// let a = Interval::new(-1.0, 2.0);
/// let b = a * a; // squaring keeps the true range [−2·2 bounds]
/// assert!(b.contains(4.0) && b.contains(-2.0));
/// assert_eq!(a.powi(2), Interval::new(0.0, 4.0)); // powi is tighter
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "interval bound is NaN");
        assert!(lo <= hi, "interval [{lo}, {hi}] is empty");
        Interval { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Interval::new(v, v)
    }

    /// Lower bound.
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// Width `hi − lo`.
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    pub fn mid(self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// `true` when `v ∈ [lo, hi]`.
    pub fn contains(self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `true` when `other ⊆ self`.
    pub fn contains_interval(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Splits at the midpoint into `(left, right)`.
    pub fn split(self) -> (Interval, Interval) {
        let m = self.mid();
        (Interval::new(self.lo, m), Interval::new(m, self.hi))
    }

    /// Tight power: `[lo, hi]ᵉ` with even-power tightening around zero.
    pub fn powi(self, e: u32) -> Interval {
        if e == 0 {
            return Interval::point(1.0);
        }
        // powi exponents are tiny (poly degrees); the cast cannot truncate.
        let (pl, ph) = (self.lo.powi(e as i32), self.hi.powi(e as i32)); // audit:allow(lossy-cast)
        if e % 2 == 1 || self.lo >= 0.0 {
            // Monotone on the whole interval (odd power, or nonnegative base).
            Interval::new(pl, ph)
        } else if self.hi <= 0.0 {
            Interval::new(ph, pl)
        } else {
            Interval::new(0.0, pl.max(ph))
        }
    }
}

impl Add for Interval {
    type Output = Interval;

    fn add(self, rhs: Interval) -> Interval {
        Interval::new(self.lo + rhs.lo, self.hi + rhs.hi)
    }
}

impl Sub for Interval {
    type Output = Interval;

    fn sub(self, rhs: Interval) -> Interval {
        Interval::new(self.lo - rhs.hi, self.hi - rhs.lo)
    }
}

impl Mul for Interval {
    type Output = Interval;

    fn mul(self, rhs: Interval) -> Interval {
        let c = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let lo = c.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval::new(lo, hi)
    }
}

impl Mul<f64> for Interval {
    type Output = Interval;

    fn mul(self, s: f64) -> Interval {
        if s >= 0.0 {
            Interval::new(self.lo * s, self.hi * s)
        } else {
            Interval::new(self.hi * s, self.lo * s)
        }
    }
}

impl Neg for Interval {
    type Output = Interval;

    fn neg(self) -> Interval {
        Interval::new(-self.hi, -self.lo)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Smallest interval containing both arguments.
pub fn hull(a: Interval, b: Interval) -> Interval {
    Interval::new(a.lo.min(b.lo), a.hi.max(b.hi))
}

/// Interval range bound of a polynomial over a box, by monomial-wise interval
/// evaluation (conservative: the true range is contained in the result).
///
/// # Panics
///
/// Panics if the box has fewer coordinates than the polynomial's variables.
///
/// # Example
///
/// ```
/// use snbc_interval::{eval_range, Interval};
/// use snbc_poly::Polynomial;
///
/// let p: Polynomial = "x0^2 - x0".parse().unwrap();
/// let r = eval_range(&p, &[Interval::new(0.0, 1.0)]);
/// // True range is [−0.25, 0]; the bound must contain it.
/// assert!(r.lo() <= -0.25 && r.hi() >= 0.0);
/// ```
pub fn eval_range(p: &Polynomial, domain: &[Interval]) -> Interval {
    assert!(
        domain.len() >= p.nvars(),
        "box has {} coordinates but polynomial uses {}",
        domain.len(),
        p.nvars()
    );
    let mut acc = Interval::point(0.0);
    for (m, c) in p.iter() {
        let mut term = Interval::point(1.0);
        for (i, &e) in m.exponents().iter().enumerate() {
            if e > 0 {
                term = term * domain[i].powi(e);
            }
        }
        acc = acc + term * c;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_contains_samples() {
        let a = Interval::new(-1.0, 2.0);
        let b = Interval::new(0.5, 3.0);
        for &x in &[-1.0, 0.0, 1.5, 2.0] {
            for &y in &[0.5, 1.0, 3.0] {
                assert!((a + b).contains(x + y));
                assert!((a - b).contains(x - y));
                assert!((a * b).contains(x * y));
                assert!((-a).contains(-x));
            }
        }
    }

    #[test]
    fn even_power_tightens() {
        let a = Interval::new(-2.0, 1.0);
        assert_eq!(a.powi(2), Interval::new(0.0, 4.0));
        assert_eq!(a.powi(3), Interval::new(-8.0, 1.0));
        assert_eq!(a.powi(0), Interval::point(1.0));
    }

    #[test]
    fn split_covers() {
        let a = Interval::new(0.0, 4.0);
        let (l, r) = a.split();
        assert_eq!(l, Interval::new(0.0, 2.0));
        assert_eq!(r, Interval::new(2.0, 4.0));
        assert!(a.contains_interval(l) && a.contains_interval(r));
    }

    #[test]
    fn range_bound_is_sound_on_grid() {
        let p: Polynomial = "x0^2*x1 - 3*x0 + x1^3".parse().unwrap();
        let domain = [Interval::new(-1.0, 1.5), Interval::new(0.0, 2.0)];
        let r = eval_range(&p, &domain);
        let steps = 7;
        for i in 0..=steps {
            for j in 0..=steps {
                let x = domain[0].lo() + domain[0].width() * i as f64 / steps as f64;
                let y = domain[1].lo() + domain[1].width() * j as f64 / steps as f64;
                assert!(r.contains(p.eval(&[x, y])), "{r} misses p({x},{y})");
            }
        }
    }

    #[test]
    fn hull_merges() {
        let h = hull(Interval::new(0.0, 1.0), Interval::new(3.0, 4.0));
        assert_eq!(h, Interval::new(0.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_interval_panics() {
        let _ = Interval::new(1.0, 0.0);
    }
}
