//! Interval arithmetic and δ-complete branch-and-bound verification.
//!
//! The CEGIS baselines the paper compares against (FOSSIL \[1\], NNCChecker
//! \[14\]) verify barrier-certificate conditions with the SMT solver dReal \[7\],
//! which decides polynomial inequalities over boxes *δ-completely*: either the
//! formula is unsatisfiable, or a point is produced where it holds up to a
//! user-chosen slack δ. dReal's core is interval constraint propagation with
//! branch-and-prune — exactly what this crate implements:
//!
//! * [`Interval`] — closed-interval arithmetic with outward monotonicity,
//! * [`eval_range`] — interval range bounds of a [`snbc_poly::Polynomial`]
//!   over a box,
//! * [`BranchAndBound`] — the δ-complete decision procedure for
//!   "`p(x) ≥ bound` for all `x` in a box intersected with polynomial
//!   constraints", returning either a proof, a concrete violation witness, or
//!   a δ-weak witness.
//!
//! It serves two roles in the reproduction: it is the *verifier substrate of
//! the baselines* (whose exponential blow-up with dimension Table 1
//! demonstrates), and an *independent soundness cross-check* for the SOS/LMI
//! certificates produced by the main SNBC pipeline.
//!
//! # Split rule and the paper's mesh argument
//!
//! The branch-and-prune split rule — halve the *widest* axis
//! ([`widest_axis`]) — is the box analogue of the paper's §3 mesh argument:
//! a Lipschitz-continuous function `f` deviates from its value at a box
//! midpoint by at most `L·r`, where `r` is half the box diameter, so
//! shrinking the diameter fastest (always splitting the widest axis)
//! tightens the midpoint-centred enclosure fastest. Where §3 fixes a mesh
//! spacing `τ` up front from the Lipschitz constant, branch-and-prune
//! refines adaptively and only where the range bound stays inconclusive —
//! the two meet in the δ threshold, which plays the role of the terminal
//! mesh width.
//!
//! Since this PR, box evaluations run through the deterministic parallel
//! wave engine ([`wave_search`]): verdicts, witnesses, and box counts are
//! bitwise identical at any `SNBC_THREADS` setting. See `docs/PARALLELISM.md`
//! and `docs/PERFORMANCE.md` for the contract and the tuning constants.
//!
//! **Rounding caveat**: arithmetic uses round-to-nearest `f64` without
//! directed (outward) rounding, matching dReal's numerical-δ setting rather
//! than a formally verified interval library. Enclosures are therefore exact
//! up to accumulated ulp-scale error; decisions within a few ulps of a
//! threshold should not be trusted, which is why the workspace always checks
//! inequalities with explicit `ε` slack.
//!
//! # Example
//!
//! ```
//! use snbc_interval::{BranchAndBound, Interval, Verdict};
//! use snbc_poly::Polynomial;
//!
//! let p: Polynomial = "x0^2 + x1^2 - 1".parse().unwrap();
//! let domain = vec![Interval::new(2.0, 3.0), Interval::new(0.0, 1.0)];
//! // On [2,3]×[0,1], x² + y² − 1 ≥ 3 > 0: verified.
//! let bb = BranchAndBound::default();
//! assert!(matches!(bb.check_at_least(&p, &domain, &[], 0.0).verdict, Verdict::Holds));
//! ```

mod bb;
mod bernstein;
mod interval;

pub use bb::{
    wave_search, widest_axis, BoxEval, BranchAndBound, CheckReport, RangeTightening, Verdict,
    WaveOutcome, MIN_PARALLEL_WAVE,
};
pub use bernstein::bernstein_range;
pub use interval::{eval_range, hull, Interval};
