//! δ-complete branch-and-prune over boxes, built on a deterministic
//! parallel *wave engine* (see [`wave_search`]).
//!
//! # The wave engine and the determinism contract
//!
//! The classic branch-and-prune loop is a serial depth-first stack: pop a
//! box, bound the polynomial on it, prune / accept / split. Boxes are
//! independent once popped, so the expensive per-box work (range bounding,
//! midpoint evaluation) parallelizes — but a naive parallel queue makes the
//! *order* in which boxes are examined depend on thread scheduling, and with
//! it the box counts, the reported witness, and the budget cutoff point.
//! That violates the workspace contract that `SNBC_THREADS` never changes an
//! output bit (docs/PARALLELISM.md).
//!
//! The wave engine keeps the contract by making the exploration order a
//! *pure function of the problem*:
//!
//! 1. a serial driver takes a fixed-size **wave** of boxes off the top of
//!    the depth-first stack (top first, i.e. classic DFS order);
//! 2. every box in the wave is evaluated — independently and in parallel
//!    via [`snbc_par::par_map_collect`], which stores results in
//!    index-ordered slots;
//! 3. the verdicts are merged **serially in wave order**: the first refuted
//!    box in wave order wins, δ-undecided boxes update the most-suspicious
//!    candidate with a strict `<` (ties keep the earlier box), and split
//!    children are pushed back in fixed order.
//!
//! Which boxes form a wave, what each evaluation returns, and how verdicts
//! merge are all independent of the worker count; threads change wall-clock
//! only. Small waves (fewer than [`MIN_PARALLEL_WAVE`] boxes) skip the
//! parallel machinery entirely — same results, no spawn overhead — which is
//! what keeps sub-second problems from paying for threads they cannot use
//! (see docs/PERFORMANCE.md for the measured crossover).

use snbc_poly::Polynomial;
use snbc_trace::Trace;

use crate::{bernstein_range, eval_range, Interval};

/// Range-bounding method used by the branch-and-prune loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RangeTightening {
    /// Term-wise interval evaluation (cheapest per box).
    #[default]
    Interval,
    /// Bernstein-form enclosures (more work per box, far fewer boxes on
    /// dependency-heavy polynomials; falls back to intervals beyond the
    /// tensor-size cap).
    Bernstein,
}

/// Outcome of a δ-complete check.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The inequality holds everywhere in the region (a proof).
    Holds,
    /// A concrete point violating the inequality was found.
    Violated {
        /// The violating point.
        witness: Vec<f64>,
        /// The (violating) value of the checked polynomial there.
        value: f64,
    },
    /// Undecided at precision δ: boxes of width < δ remain where the bound
    /// could not be proven, the hallmark weak answer of δ-complete solvers.
    Unknown {
        /// Midpoint of the most suspicious remaining box.
        witness: Vec<f64>,
        /// Interval lower bound of the polynomial on that box.
        value: f64,
    },
}

/// Statistics-bearing result of [`BranchAndBound::check_at_least`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// The decision.
    pub verdict: Verdict,
    /// Boxes examined by the branch-and-prune loop.
    pub boxes_processed: usize,
    /// Deepest subdivision level reached.
    pub max_depth: usize,
}

// ---------------------------------------------------------------------------
// The deterministic wave engine

/// Verdict of one box evaluation inside [`wave_search`].
#[derive(Debug, Clone, PartialEq)]
pub enum BoxEval {
    /// The box is fully discharged (proven, or pruned as infeasible).
    Discharged,
    /// A concrete refutation: the whole search stops with this witness.
    Refuted {
        /// The refuting point.
        witness: Vec<f64>,
        /// The value observed there.
        value: f64,
    },
    /// The box is too small to split further but could not be discharged;
    /// it becomes a candidate for the most-suspicious δ-box.
    Undecided {
        /// The box midpoint.
        witness: Vec<f64>,
        /// A score; the candidate with the smallest score wins (strict
        /// `<`, so ties keep the earliest box in exploration order).
        value: f64,
    },
    /// Split the box along its widest dimension and keep searching.
    Split,
}

/// Result of a [`wave_search`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveOutcome {
    /// First refutation in exploration order, if any.
    pub refuted: Option<(Vec<f64>, f64)>,
    /// Most suspicious δ-undecided box (smallest score, earliest wins ties).
    pub suspicious: Option<(Vec<f64>, f64)>,
    /// Boxes evaluated before the search ended.
    pub boxes_processed: usize,
    /// Deepest subdivision level reached.
    pub max_depth: usize,
    /// `true` when the box budget ran out with work still pending; the
    /// midpoint of the next pending box is reported alongside.
    pub exhausted: Option<Vec<f64>>,
}

/// Boxes taken per wave: bounds frontier memory at `O(wave · depth)` while
/// giving the workers enough independent boxes to stay busy.
const WAVE_TARGET: usize = 256;

/// Boxes per traced evaluation chunk inside a wave. The chunk grid depends
/// only on the wave length, so trace span counts are thread-count-invariant.
const EVAL_CHUNK: usize = 16;

/// Waves shorter than this run inline on the caller: the per-wave spawn
/// cost (~tens of µs) exceeds the per-box work for small frontiers, which
/// is exactly the regime of sub-second quickstart-sized problems.
pub const MIN_PARALLEL_WAVE: usize = 64;

/// Deterministic parallel branch-and-bound driver.
///
/// Explores the tree rooted at `root` depth-first in waves (see the wave
/// engine discussion in the crate docs), evaluating each box with `eval`
/// and splitting
/// [`BoxEval::Split`] boxes along their widest dimension. Stops at the first
/// [`BoxEval::Refuted`] box in exploration order, or when `max_boxes`
/// evaluations have been spent. The result is bitwise identical at any
/// `SNBC_THREADS` setting.
///
/// When `trace` is recording, each parallel evaluation chunk emits a
/// `bb-boxes` span on the worker that ran it, so Perfetto timelines and the
/// self-time profile show the branch-and-bound fan-out per worker.
pub fn wave_search<F>(root: Vec<Interval>, max_boxes: usize, trace: &Trace, eval: F) -> WaveOutcome
where
    F: Fn(&[Interval]) -> BoxEval + Sync,
{
    let mut stack: Vec<(Vec<Interval>, usize)> = vec![(root, 0)];
    let mut boxes_processed = 0usize;
    let mut max_depth = 0usize;
    let mut suspicious: Option<(Vec<f64>, f64)> = None;

    while let Some(top) = stack.last() {
        let remaining = max_boxes.saturating_sub(boxes_processed);
        if remaining == 0 {
            let pending: Vec<f64> = top.0.iter().map(|iv| iv.mid()).collect();
            return WaveOutcome {
                refuted: None,
                suspicious,
                boxes_processed,
                max_depth,
                exhausted: Some(pending),
            };
        }
        let w = WAVE_TARGET.min(stack.len()).min(remaining);
        let mut wave = stack.split_off(stack.len() - w);
        wave.reverse(); // wave[0] is the former stack top: classic DFS order
        boxes_processed += w;

        let evals: Vec<BoxEval> = if w < MIN_PARALLEL_WAVE {
            // Same computation, no spawns: the engine below this size is
            // pure overhead (docs/PERFORMANCE.md). Identical bits either way.
            wave.iter().map(|(bx, _)| eval(bx)).collect()
        } else {
            let wave_ref = &wave;
            let chunks: Vec<Vec<BoxEval>> =
                snbc_par::par_map_collect(w.div_ceil(EVAL_CHUNK), |c| {
                    let lo = c * EVAL_CHUNK;
                    let hi = (lo + EVAL_CHUNK).min(w);
                    let span = trace.begin_span("bb-boxes", Some(c as u64));
                    let out: Vec<BoxEval> =
                        wave_ref[lo..hi].iter().map(|(bx, _)| eval(bx)).collect();
                    trace.end_span("bb-boxes", span);
                    out
                });
            chunks.into_iter().flatten().collect()
        };

        // Serial merge in wave (= exploration) order.
        let mut splits: Vec<(Vec<Interval>, usize)> = Vec::new();
        for ((bx, depth), ev) in wave.into_iter().zip(evals) {
            max_depth = max_depth.max(depth);
            match ev {
                BoxEval::Discharged => {}
                BoxEval::Refuted { witness, value } => {
                    return WaveOutcome {
                        refuted: Some((witness, value)),
                        suspicious,
                        boxes_processed,
                        max_depth,
                        exhausted: None,
                    };
                }
                BoxEval::Undecided { witness, value } => {
                    let better = suspicious.as_ref().is_none_or(|(_, v)| value < *v);
                    if better {
                        suspicious = Some((witness, value));
                    }
                }
                BoxEval::Split => {
                    let Some((axis, _)) = widest_axis(&bx) else {
                        continue; // 0-dimensional: nothing to split
                    };
                    let (l, r) = bx[axis].split();
                    let mut left = bx.clone();
                    left[axis] = l;
                    let mut right = bx;
                    right[axis] = r;
                    splits.push((left, depth + 1));
                    splits.push((right, depth + 1));
                }
            }
        }
        // Children of earlier wave boxes land nearer the stack top, and for
        // each split the right child is explored first — the same order the
        // serial DFS produced.
        for pair in splits.chunks(2).rev() {
            for child in pair {
                stack.push(child.clone());
            }
        }
    }

    WaveOutcome {
        refuted: None,
        suspicious,
        boxes_processed,
        max_depth,
        exhausted: None,
    }
}

/// Index and width of the widest dimension of a box (`None` for empty boxes).
/// This is the branch-and-prune split rule: halving the widest axis shrinks
/// the box diameter fastest, which is what drives the Lipschitz-style range
/// bounds toward convergence.
pub fn widest_axis(bx: &[Interval]) -> Option<(usize, f64)> {
    bx.iter()
        .enumerate()
        .map(|(i, iv)| (i, iv.width()))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

// ---------------------------------------------------------------------------
// The δ-complete decision procedure

/// δ-complete branch-and-prune verifier for polynomial inequalities over
/// boxes — the reproduction's stand-in for dReal (see the
/// [crate docs](crate)).
#[derive(Debug, Clone)]
pub struct BranchAndBound {
    /// Precision: boxes narrower than this in every dimension are no longer
    /// split; an undecided such box yields [`Verdict::Unknown`].
    pub delta: f64,
    /// Budget on processed boxes (guards the exponential worst case, standing
    /// in for the paper's 7200 s timeout).
    pub max_boxes: usize,
    /// Range-bounding method.
    pub tightening: RangeTightening,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        BranchAndBound {
            delta: 1e-3,
            max_boxes: 2_000_000,
            tightening: RangeTightening::default(),
        }
    }
}

impl BranchAndBound {
    /// Decides whether `p(x) ≥ bound` for all `x` in `domain` satisfying
    /// `gᵢ(x) ≥ 0` for every side constraint.
    ///
    /// A [`Verdict::Violated`] witness is a concrete point in the constrained
    /// region where `p < bound` (validated by direct evaluation). If the box
    /// budget is exhausted the current most-suspicious box is reported as
    /// [`Verdict::Unknown`].
    ///
    /// Box evaluations run in parallel through the deterministic
    /// [`wave_search`] engine: the verdict, the witness, and the box counts
    /// are bitwise identical at any `SNBC_THREADS` setting
    /// (`tests/par_determinism.rs` enforces this end to end).
    ///
    /// # Panics
    ///
    /// Panics if `domain` has fewer coordinates than the polynomials use.
    pub fn check_at_least(
        &self,
        p: &Polynomial,
        domain: &[Interval],
        constraints: &[Polynomial],
        bound: f64,
    ) -> CheckReport {
        self.check_at_least_traced(p, domain, constraints, bound, &Trace::off())
    }

    /// [`BranchAndBound::check_at_least`] with an attached trace sink: the
    /// wave engine emits per-chunk `bb-boxes` spans on the workers that
    /// evaluate them (see docs/TRACING.md).
    pub fn check_at_least_traced(
        &self,
        p: &Polynomial,
        domain: &[Interval],
        constraints: &[Polynomial],
        bound: f64,
        trace: &Trace,
    ) -> CheckReport {
        let range_of = |p: &Polynomial, bx: &[Interval]| match self.tightening {
            RangeTightening::Interval => eval_range(p, bx),
            RangeTightening::Bernstein => bernstein_range(p, bx),
        };
        let outcome = wave_search(domain.to_vec(), self.max_boxes, trace, |bx| {
            // Constraint pruning: if some gᵢ is provably negative on the box,
            // the region does not intersect it.
            if constraints.iter().any(|g| range_of(g, bx).hi() < 0.0) {
                return BoxEval::Discharged;
            }
            let range = range_of(p, bx);
            if range.lo() >= bound {
                return BoxEval::Discharged; // proven on this box
            }
            // Try the midpoint as a concrete counterexample.
            let mid: Vec<f64> = bx.iter().map(|i| i.mid()).collect();
            let feasible = constraints.iter().all(|g| g.eval(&mid) >= 0.0);
            if feasible {
                let v = p.eval(&mid);
                if v < bound {
                    return BoxEval::Refuted {
                        witness: mid,
                        value: v,
                    };
                }
            }
            // Box too small to split further: δ-undecided. A 0-dimensional
            // box has no axis to split, so it is terminal by definition.
            let Some((_, width)) = widest_axis(bx) else {
                return BoxEval::Discharged;
            };
            if width < self.delta {
                return BoxEval::Undecided {
                    witness: mid,
                    value: range.lo(),
                };
            }
            BoxEval::Split
        });

        let verdict = if let Some((witness, value)) = outcome.refuted {
            Verdict::Violated { witness, value }
        } else if let Some(pending) = outcome.exhausted {
            let (witness, value) = outcome
                .suspicious
                .unwrap_or((pending, f64::NAN));
            Verdict::Unknown { witness, value }
        } else if let Some((witness, value)) = outcome.suspicious {
            Verdict::Unknown { witness, value }
        } else {
            Verdict::Holds
        };
        CheckReport {
            verdict,
            boxes_processed: outcome.boxes_processed,
            max_depth: outcome.max_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box(n: usize) -> Vec<Interval> {
        vec![Interval::new(-1.0, 1.0); n]
    }

    #[test]
    fn proves_positive_polynomial() {
        let p: Polynomial = "x0^2 + x1^2 + 0.5".parse().unwrap();
        let r = BranchAndBound::default().check_at_least(&p, &unit_box(2), &[], 0.0);
        assert_eq!(r.verdict, Verdict::Holds);
    }

    #[test]
    fn finds_violation_with_valid_witness() {
        let p: Polynomial = "x0^2 + x1^2 - 0.5".parse().unwrap();
        let r = BranchAndBound::default().check_at_least(&p, &unit_box(2), &[], 0.0);
        match r.verdict {
            Verdict::Violated { witness, value } => {
                assert!(value < 0.0);
                assert!((p.eval(&witness) - value).abs() < 1e-12);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn constraint_restricts_region() {
        // p = x₀ is negative on [−1,0) but we constrain to x₀ ≥ 0.25.
        let p: Polynomial = "x0".parse().unwrap();
        let g: Polynomial = "x0 - 0.25".parse().unwrap();
        let r = BranchAndBound::default().check_at_least(&p, &unit_box(1), &[g], 0.0);
        assert_eq!(r.verdict, Verdict::Holds);
    }

    #[test]
    fn boundary_case_is_delta_undecided_or_proven() {
        // p = x² ≥ 0 is tight at 0: interval arithmetic proves each box
        // eventually (powi is exact for even powers), so this should hold.
        let p: Polynomial = "x0^2".parse().unwrap();
        let r = BranchAndBound::default().check_at_least(&p, &unit_box(1), &[], 0.0);
        assert_eq!(r.verdict, Verdict::Holds);
    }

    #[test]
    fn strict_bound_on_touching_polynomial_is_unknown() {
        // x² ≥ 1e−12 fails only at the single point 0; δ-completeness yields
        // Unknown (cannot prove, cannot produce a strict violation if the
        // midpoint never lands exactly at 0... it does: mid of [−1,1] is 0).
        let p: Polynomial = "x0^2".parse().unwrap();
        let r = BranchAndBound::default().check_at_least(&p, &unit_box(1), &[], 1e-12);
        assert!(matches!(
            r.verdict,
            Verdict::Violated { .. } | Verdict::Unknown { .. }
        ));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // (x₀²+x₁²−1)² + 1e−4 holds everywhere but the interval dependency
        // problem along the circle forces deep subdivision; a 10-box budget
        // cannot finish.
        let p: Polynomial = "(x0^2 + x1^2 - 1)^2 + 0.0001".parse().unwrap();
        let bb = BranchAndBound {
            delta: 1e-12,
            max_boxes: 10,
            ..Default::default()
        };
        let r = bb.check_at_least(&p, &unit_box(2), &[], 0.0);
        // Tiny budget: can't finish.
        assert!(matches!(r.verdict, Verdict::Unknown { .. }));
        assert!(r.boxes_processed >= 10);
    }

    #[test]
    fn bernstein_tightening_prunes_faster() {
        // Dependency-heavy positivity query: (x−y)² + 0.01 > 0.
        let p: Polynomial = "(x0 - x1)^2 + 0.01".parse().unwrap();
        let dom = unit_box(2);
        let interval = BranchAndBound::default().check_at_least(&p, &dom, &[], 0.0);
        let bern = BranchAndBound {
            tightening: RangeTightening::Bernstein,
            ..Default::default()
        }
        .check_at_least(&p, &dom, &[], 0.0);
        assert_eq!(interval.verdict, Verdict::Holds);
        assert_eq!(bern.verdict, Verdict::Holds);
        assert!(
            bern.boxes_processed * 4 <= interval.boxes_processed,
            "bernstein {} boxes vs interval {}",
            bern.boxes_processed,
            interval.boxes_processed
        );
    }

    #[test]
    fn dimension_blowup_is_measurable() {
        // The number of boxes grows with dimension for a tight bound — the
        // phenomenon that makes SMT-style verification stall in Table 1.
        let mk = |n: usize| {
            let terms: Vec<String> = (0..n).map(|i| format!("x{i}^2")).collect();
            let p: Polynomial = format!("{} + 0.001", terms.join("+")).parse().unwrap();
            BranchAndBound::default()
                .check_at_least(&p, &unit_box(n), &[], 0.0)
                .boxes_processed
        };
        assert!(mk(1) <= mk(3), "box count should not shrink with dimension");
    }

    #[test]
    fn traced_check_emits_worker_chunk_spans() {
        // A dependency-heavy proof processes enough boxes to cross
        // MIN_PARALLEL_WAVE, so the traced run must contain `bb-boxes`
        // chunk spans — and the same verdict as the untraced run.
        let p: Polynomial = "(x0 - x1)^2 + 0.01".parse().unwrap();
        let dom = unit_box(2);
        let bb = BranchAndBound::default();
        let plain = bb.check_at_least(&p, &dom, &[], 0.0);
        let trace = Trace::recording();
        let traced = bb.check_at_least_traced(&p, &dom, &[], 0.0, &trace);
        assert_eq!(plain, traced, "tracing must not change the result");
        let dump = trace.dump().expect("recording trace dumps");
        let spans = dump
            .tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| {
                matches!(&e.kind, snbc_trace::EventKind::SpanBegin { name, .. } if name == "bb-boxes")
            })
            .count();
        assert!(spans > 0, "expected bb-boxes spans in the traced run");
    }

    #[test]
    fn wave_search_engine_is_deterministic_across_thread_counts() {
        // Direct engine-level check (the end-to-end leg lives in
        // tests/par_determinism.rs): identical outcome at 1 vs 4 workers.
        let p: Polynomial = "(x0^2 + x1^2 - 1)^2 + 0.0001".parse().unwrap();
        let run = |threads: usize| {
            snbc_par::set_threads(Some(threads));
            let r = BranchAndBound::default().check_at_least(&p, &unit_box(2), &[], 0.0);
            snbc_par::set_threads(None);
            r
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel);
    }
}
