use snbc_poly::Polynomial;

use crate::{bernstein_range, eval_range, Interval};

/// Range-bounding method used by the branch-and-prune loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RangeTightening {
    /// Term-wise interval evaluation (cheapest per box).
    #[default]
    Interval,
    /// Bernstein-form enclosures (more work per box, far fewer boxes on
    /// dependency-heavy polynomials; falls back to intervals beyond the
    /// tensor-size cap).
    Bernstein,
}

/// Outcome of a δ-complete check.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The inequality holds everywhere in the region (a proof).
    Holds,
    /// A concrete point violating the inequality was found.
    Violated {
        /// The violating point.
        witness: Vec<f64>,
        /// The (violating) value of the checked polynomial there.
        value: f64,
    },
    /// Undecided at precision δ: boxes of width < δ remain where the bound
    /// could not be proven, the hallmark weak answer of δ-complete solvers.
    Unknown {
        /// Midpoint of the most suspicious remaining box.
        witness: Vec<f64>,
        /// Interval lower bound of the polynomial on that box.
        value: f64,
    },
}

/// Statistics-bearing result of [`BranchAndBound::check_at_least`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// The decision.
    pub verdict: Verdict,
    /// Boxes examined by the branch-and-prune loop.
    pub boxes_processed: usize,
    /// Deepest subdivision level reached.
    pub max_depth: usize,
}

/// δ-complete branch-and-prune verifier for polynomial inequalities over
/// boxes — the reproduction's stand-in for dReal (see the
/// [crate docs](crate)).
#[derive(Debug, Clone)]
pub struct BranchAndBound {
    /// Precision: boxes narrower than this in every dimension are no longer
    /// split; an undecided such box yields [`Verdict::Unknown`].
    pub delta: f64,
    /// Budget on processed boxes (guards the exponential worst case, standing
    /// in for the paper's 7200 s timeout).
    pub max_boxes: usize,
    /// Range-bounding method.
    pub tightening: RangeTightening,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        BranchAndBound {
            delta: 1e-3,
            max_boxes: 2_000_000,
            tightening: RangeTightening::default(),
        }
    }
}

impl BranchAndBound {
    /// Decides whether `p(x) ≥ bound` for all `x` in `domain` satisfying
    /// `gᵢ(x) ≥ 0` for every side constraint.
    ///
    /// A [`Verdict::Violated`] witness is a concrete point in the constrained
    /// region where `p < bound` (validated by direct evaluation). If the box
    /// budget is exhausted the current most-suspicious box is reported as
    /// [`Verdict::Unknown`].
    ///
    /// # Panics
    ///
    /// Panics if `domain` has fewer coordinates than the polynomials use.
    pub fn check_at_least(
        &self,
        p: &Polynomial,
        domain: &[Interval],
        constraints: &[Polynomial],
        bound: f64,
    ) -> CheckReport {
        let range_of = |p: &Polynomial, bx: &[Interval]| match self.tightening {
            RangeTightening::Interval => eval_range(p, bx),
            RangeTightening::Bernstein => bernstein_range(p, bx),
        };
        let mut stack: Vec<(Vec<Interval>, usize)> = vec![(domain.to_vec(), 0)];
        let mut boxes_processed = 0;
        let mut max_depth = 0;
        let mut suspicious: Option<(Vec<f64>, f64)> = None;

        while let Some((bx, depth)) = stack.pop() {
            boxes_processed += 1;
            max_depth = max_depth.max(depth);
            if boxes_processed > self.max_boxes {
                let (witness, value) = suspicious
                    .unwrap_or_else(|| (bx.iter().map(|i| i.mid()).collect(), f64::NAN));
                return CheckReport {
                    verdict: Verdict::Unknown { witness, value },
                    boxes_processed,
                    max_depth,
                };
            }

            // Constraint pruning: if some gᵢ is provably negative on the box,
            // the region does not intersect it.
            if constraints.iter().any(|g| range_of(g, &bx).hi() < 0.0) {
                continue;
            }

            let range = range_of(p, &bx);
            if range.lo() >= bound {
                continue; // proven on this box
            }

            // Try the midpoint as a concrete counterexample.
            let mid: Vec<f64> = bx.iter().map(|i| i.mid()).collect();
            let feasible = constraints.iter().all(|g| g.eval(&mid) >= 0.0);
            if feasible {
                let v = p.eval(&mid);
                if v < bound {
                    return CheckReport {
                        verdict: Verdict::Violated {
                            witness: mid,
                            value: v,
                        },
                        boxes_processed,
                        max_depth,
                    };
                }
            }

            // Box too small to split further: δ-undecided. A 0-dimensional
            // box has no axis to split, so it is terminal by definition.
            let Some((widest, width)) = bx
                .iter()
                .enumerate()
                .map(|(i, iv)| (i, iv.width()))
                .max_by(|a, b| a.1.total_cmp(&b.1))
            else {
                continue;
            };
            if width < self.delta {
                let better = suspicious
                    .as_ref()
                    .is_none_or(|(_, v)| range.lo() < *v);
                if better {
                    suspicious = Some((mid, range.lo()));
                }
                continue;
            }

            let (l, r) = bx[widest].split();
            let mut left = bx.clone();
            left[widest] = l;
            let mut right = bx;
            right[widest] = r;
            stack.push((left, depth + 1));
            stack.push((right, depth + 1));
        }

        match suspicious {
            None => CheckReport {
                verdict: Verdict::Holds,
                boxes_processed,
                max_depth,
            },
            Some((witness, value)) => CheckReport {
                verdict: Verdict::Unknown { witness, value },
                boxes_processed,
                max_depth,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box(n: usize) -> Vec<Interval> {
        vec![Interval::new(-1.0, 1.0); n]
    }

    #[test]
    fn proves_positive_polynomial() {
        let p: Polynomial = "x0^2 + x1^2 + 0.5".parse().unwrap();
        let r = BranchAndBound::default().check_at_least(&p, &unit_box(2), &[], 0.0);
        assert_eq!(r.verdict, Verdict::Holds);
    }

    #[test]
    fn finds_violation_with_valid_witness() {
        let p: Polynomial = "x0^2 + x1^2 - 0.5".parse().unwrap();
        let r = BranchAndBound::default().check_at_least(&p, &unit_box(2), &[], 0.0);
        match r.verdict {
            Verdict::Violated { witness, value } => {
                assert!(value < 0.0);
                assert!((p.eval(&witness) - value).abs() < 1e-12);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn constraint_restricts_region() {
        // p = x₀ is negative on [−1,0) but we constrain to x₀ ≥ 0.25.
        let p: Polynomial = "x0".parse().unwrap();
        let g: Polynomial = "x0 - 0.25".parse().unwrap();
        let r = BranchAndBound::default().check_at_least(&p, &unit_box(1), &[g], 0.0);
        assert_eq!(r.verdict, Verdict::Holds);
    }

    #[test]
    fn boundary_case_is_delta_undecided_or_proven() {
        // p = x² ≥ 0 is tight at 0: interval arithmetic proves each box
        // eventually (powi is exact for even powers), so this should hold.
        let p: Polynomial = "x0^2".parse().unwrap();
        let r = BranchAndBound::default().check_at_least(&p, &unit_box(1), &[], 0.0);
        assert_eq!(r.verdict, Verdict::Holds);
    }

    #[test]
    fn strict_bound_on_touching_polynomial_is_unknown() {
        // x² ≥ 1e−12 fails only at the single point 0; δ-completeness yields
        // Unknown (cannot prove, cannot produce a strict violation if the
        // midpoint never lands exactly at 0... it does: mid of [−1,1] is 0).
        let p: Polynomial = "x0^2".parse().unwrap();
        let r = BranchAndBound::default().check_at_least(&p, &unit_box(1), &[], 1e-12);
        assert!(matches!(
            r.verdict,
            Verdict::Violated { .. } | Verdict::Unknown { .. }
        ));
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // (x₀²+x₁²−1)² + 1e−4 holds everywhere but the interval dependency
        // problem along the circle forces deep subdivision; a 10-box budget
        // cannot finish.
        let p: Polynomial = "(x0^2 + x1^2 - 1)^2 + 0.0001".parse().unwrap();
        let bb = BranchAndBound {
            delta: 1e-12,
            max_boxes: 10,
            ..Default::default()
        };
        let r = bb.check_at_least(&p, &unit_box(2), &[], 0.0);
        // Tiny budget: can't finish.
        assert!(matches!(r.verdict, Verdict::Unknown { .. }));
        assert!(r.boxes_processed >= 10);
    }

    #[test]
    fn bernstein_tightening_prunes_faster() {
        // Dependency-heavy positivity query: (x−y)² + 0.01 > 0.
        let p: Polynomial = "(x0 - x1)^2 + 0.01".parse().unwrap();
        let dom = unit_box(2);
        let interval = BranchAndBound::default().check_at_least(&p, &dom, &[], 0.0);
        let bern = BranchAndBound {
            tightening: RangeTightening::Bernstein,
            ..Default::default()
        }
        .check_at_least(&p, &dom, &[], 0.0);
        assert_eq!(interval.verdict, Verdict::Holds);
        assert_eq!(bern.verdict, Verdict::Holds);
        assert!(
            bern.boxes_processed * 4 <= interval.boxes_processed,
            "bernstein {} boxes vs interval {}",
            bern.boxes_processed,
            interval.boxes_processed
        );
    }

    #[test]
    fn dimension_blowup_is_measurable() {
        // The number of boxes grows with dimension for a tight bound — the
        // phenomenon that makes SMT-style verification stall in Table 1.
        let mk = |n: usize| {
            let terms: Vec<String> = (0..n).map(|i| format!("x{i}^2")).collect();
            let p: Polynomial = format!("{} + 0.001", terms.join("+")).parse().unwrap();
            BranchAndBound::default()
                .check_at_least(&p, &unit_box(n), &[], 0.0)
                .boxes_processed
        };
        assert!(mk(1) <= mk(3), "box count should not shrink with dimension");
    }
}
