//! Controlled continuous dynamical systems (CCDS) and the benchmark suite.
//!
//! Models the objects of §2 of the paper:
//!
//! * [`SemiAlgebraicSet`] — compact sets `{x | g₁(x) ≥ 0, …}` used for the
//!   initial set `Θ`, domain `Ψ` and unsafe region `Ξ`, with membership
//!   testing and uniform/low-discrepancy sampling;
//! * [`Ccds`] — a controlled system `ẋ = f(x, u)` with polynomial dynamics
//!   (the control input is the extra variable `x_n`), closable with a
//!   polynomial controller abstraction `u = h(x)`;
//! * [`simulate`] — fixed-step RK4 integration of the closed loop, used for
//!   phase portraits (Fig. 3) and trajectory-based safety cross-checks;
//! * [`benchmarks`] — the Academic 3D example (eq. (18)) and reconstructions
//!   of the benchmark family C1–C14 of Table 1, with the exact `(n_x, d_f)`
//!   signatures and the NN shapes the paper reports. The cited papers'
//!   dynamics are not reprinted in the DAC paper, so each entry documents its
//!   provenance; the scaling story of Table 1 depends only on the published
//!   signatures, which are preserved exactly.
//!
//! # Example
//!
//! ```
//! use snbc_dynamics::benchmarks;
//!
//! let bench = benchmarks::academic_3d();
//! assert_eq!(bench.system.nvars(), 3);
//! // The open-loop field of eq. (18): ẋ = z + 8y.
//! let dx = bench.system.eval_field(&[0.0, 1.0, 0.5], 0.0);
//! assert_eq!(dx[0], 8.5);
//! ```

pub mod benchmarks;
mod sampler;
mod set;
mod system;

pub use sampler::{halton_point, sample_box_halton, sample_box_uniform};
pub use set::SemiAlgebraicSet;
pub use system::{simulate, Ccds, Trajectory};
