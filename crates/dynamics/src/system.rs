use snbc_poly::Polynomial;

use crate::SemiAlgebraicSet;

/// A controlled continuous dynamical system `C = ⟨f, Θ, Ψ⟩` with unsafe set
/// `Ξ` (§2 of the paper, eq. (2)).
///
/// The open-loop vector field is polynomial in the state `x₀…x_{n−1}` and the
/// scalar control input, which is represented as the extra variable `x_n`.
/// Closing the loop with a polynomial controller `u = h(x)` is a polynomial
/// substitution.
///
/// # Example
///
/// ```
/// use snbc_dynamics::{Ccds, SemiAlgebraicSet};
/// use snbc_poly::Polynomial;
///
/// // ẋ = u on the line, u = −x stabilizes.
/// let sys = Ccds::new(
///     "integrator",
///     vec!["x1".parse().unwrap()],           // x1 is the control input
///     SemiAlgebraicSet::box_set(&[(-0.1, 0.1)]),
///     SemiAlgebraicSet::box_set(&[(-1.0, 1.0)]),
///     SemiAlgebraicSet::box_set(&[(0.9, 1.0)]),
/// );
/// let closed = sys.close_loop(&"-1*x0".parse::<Polynomial>().unwrap());
/// assert_eq!(closed[0], "-1*x0".parse().unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct Ccds {
    name: String,
    /// Field components in variables `x₀…x_{n−1}` plus the control inputs
    /// `x_n … x_{n+m−1}`.
    field: Vec<Polynomial>,
    num_inputs: usize,
    init: SemiAlgebraicSet,
    domain: SemiAlgebraicSet,
    unsafe_set: SemiAlgebraicSet,
}

impl Ccds {
    /// Creates a system. `field[i]` is `ẋᵢ` as a polynomial in
    /// `(x₀…x_{n−1}, u = x_n)`.
    ///
    /// # Panics
    ///
    /// Panics if set dimensions do not match the field arity, or a field
    /// component references variables beyond `x_n`.
    pub fn new(
        name: impl Into<String>,
        field: Vec<Polynomial>,
        init: SemiAlgebraicSet,
        domain: SemiAlgebraicSet,
        unsafe_set: SemiAlgebraicSet,
    ) -> Self {
        let n = field.len();
        assert!(n > 0, "empty vector field");
        assert_eq!(init.nvars(), n, "init set dimension mismatch");
        assert_eq!(domain.nvars(), n, "domain dimension mismatch");
        assert_eq!(unsafe_set.nvars(), n, "unsafe set dimension mismatch");
        for f in &field {
            assert!(
                f.nvars() <= n + 1,
                "field component references variables beyond u = x{n}"
            );
        }
        Ccds {
            name: name.into(),
            field,
            num_inputs: 1,
            init,
            domain,
            unsafe_set,
        }
    }

    /// System name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// State dimension `n`.
    pub fn nvars(&self) -> usize {
        self.field.len()
    }

    /// The open-loop field (control input is variable `x_n`).
    pub fn field(&self) -> &[Polynomial] {
        &self.field
    }

    /// Maximum degree of the field components (the paper's `d_f`, counting
    /// only state variables — the control enters affinely in all benchmarks).
    pub fn field_degree(&self) -> u32 {
        self.field.iter().map(Polynomial::degree).max().unwrap_or(0)
    }

    /// Initial set `Θ`.
    pub fn init(&self) -> &SemiAlgebraicSet {
        &self.init
    }

    /// Domain `Ψ`.
    pub fn domain(&self) -> &SemiAlgebraicSet {
        &self.domain
    }

    /// Unsafe region `Ξ`.
    pub fn unsafe_set(&self) -> &SemiAlgebraicSet {
        &self.unsafe_set
    }

    /// Evaluates the open-loop field at `(x, u)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.nvars()`.
    pub fn eval_field(&self, x: &[f64], u: f64) -> Vec<f64> {
        assert_eq!(x.len(), self.nvars(), "state dimension mismatch");
        let mut xu = x.to_vec();
        xu.push(u);
        self.field.iter().map(|f| f.eval(&xu)).collect()
    }

    /// Substitutes `u = h(x)`, returning the closed-loop polynomial field.
    pub fn close_loop(&self, h: &Polynomial) -> Vec<Polynomial> {
        let n = self.nvars();
        self.field.iter().map(|f| f.substitute(n, h)).collect()
    }

    /// Closed-loop field with the *interval controller* `u = h(x) + w`, where
    /// `w` is a fresh variable placed at index `n` (the paper's polynomial
    /// inclusion of §3: `w ∈ [−σ*, σ*]`).
    pub fn close_loop_with_error(&self, h: &Polynomial) -> Vec<Polynomial> {
        let n = self.nvars();
        let hw = h + &Polynomial::var(n); // h(x) + w, with w in slot n
        self.field.iter().map(|f| f.substitute(n, &hw)).collect()
    }
}

/// A simulated trajectory: sampled states at fixed time steps.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// Step size used.
    pub dt: f64,
    /// States, starting with the initial condition.
    pub states: Vec<Vec<f64>>,
}

impl Trajectory {
    /// `true` if any sampled state lies in the given set.
    pub fn enters(&self, set: &SemiAlgebraicSet) -> bool {
        self.states.iter().any(|x| set.contains(x))
    }

    /// Largest Euclidean norm along the trajectory.
    pub fn max_norm(&self) -> f64 {
        self.states
            .iter()
            .map(|x| snbc_linalg_norm(x))
            .fold(0.0, f64::max)
    }
}

fn snbc_linalg_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Integrates the closed-loop system with classical RK4 from `x0` for
/// `steps` steps of size `dt`, with the control computed by `controller`.
///
/// # Panics
///
/// Panics if `x0.len() != system.nvars()` or `dt ≤ 0`.
pub fn simulate(
    system: &Ccds,
    controller: impl Fn(&[f64]) -> f64,
    x0: &[f64],
    dt: f64,
    steps: usize,
) -> Trajectory {
    assert_eq!(x0.len(), system.nvars(), "initial state dimension mismatch");
    assert!(dt > 0.0, "step size must be positive");
    let deriv = |x: &[f64]| system.eval_field(x, controller(x));
    let mut states = Vec::with_capacity(steps + 1);
    let mut x = x0.to_vec();
    states.push(x.clone());
    for _ in 0..steps {
        let k1 = deriv(&x);
        let x2: Vec<f64> = x.iter().zip(&k1).map(|(a, k)| a + 0.5 * dt * k).collect();
        let k2 = deriv(&x2);
        let x3: Vec<f64> = x.iter().zip(&k2).map(|(a, k)| a + 0.5 * dt * k).collect();
        let k3 = deriv(&x3);
        let x4: Vec<f64> = x.iter().zip(&k3).map(|(a, k)| a + dt * k).collect();
        let k4 = deriv(&x4);
        for i in 0..x.len() {
            x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        states.push(x.clone());
    }
    Trajectory { dt, states }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harmonic() -> Ccds {
        // ẋ = y, ẏ = −x + 0·u (autonomous oscillator with a dummy input).
        Ccds::new(
            "osc",
            vec!["x1".parse().unwrap(), "-1*x0".parse().unwrap()],
            SemiAlgebraicSet::box_set(&[(-0.1, 0.1), (-0.1, 0.1)]),
            SemiAlgebraicSet::box_set(&[(-2.0, 2.0), (-2.0, 2.0)]),
            SemiAlgebraicSet::box_set(&[(1.5, 2.0), (1.5, 2.0)]),
        )
    }

    #[test]
    fn rk4_conserves_oscillator_energy() {
        let sys = harmonic();
        let traj = simulate(&sys, |_| 0.0, &[1.0, 0.0], 0.01, 1000);
        for x in &traj.states {
            let e = x[0] * x[0] + x[1] * x[1];
            assert!((e - 1.0).abs() < 1e-6, "energy drifted to {e}");
        }
    }

    #[test]
    fn rk4_has_fourth_order_accuracy() {
        // Compare against the exact solution x(t) = cos(t) at t = 1.
        let sys = harmonic();
        let err = |dt: f64| {
            let steps = (1.0 / dt) as usize;
            let t = simulate(&sys, |_| 0.0, &[1.0, 0.0], dt, steps);
            (t.states[steps][0] - 1.0f64.cos()).abs()
        };
        let e1 = err(0.1);
        let e2 = err(0.05);
        // Fourth order: halving dt should shrink error ~16×.
        assert!(e1 / e2 > 8.0, "order too low: {e1} / {e2}");
    }

    #[test]
    fn close_loop_substitutes_controller() {
        // ẋ = x1(= u); u = −2x0 ⇒ ẋ = −2x0.
        let sys = Ccds::new(
            "int",
            vec!["x1".parse().unwrap()],
            SemiAlgebraicSet::box_set(&[(-0.1, 0.1)]),
            SemiAlgebraicSet::box_set(&[(-1.0, 1.0)]),
            SemiAlgebraicSet::box_set(&[(0.9, 1.0)]),
        );
        let closed = sys.close_loop(&"-2*x0".parse::<Polynomial>().unwrap());
        assert_eq!(closed[0], "-2*x0".parse().unwrap());
        // With error channel: ẋ = −2x0 + w (w at index 1).
        let robust = sys.close_loop_with_error(&"-2*x0".parse::<Polynomial>().unwrap());
        assert_eq!(robust[0], "-2*x0 + x1".parse().unwrap());
    }

    #[test]
    fn trajectory_enters_detects_unsafe() {
        let sys = harmonic();
        let traj = simulate(&sys, |_| 0.0, &[1.9, 1.9], 0.01, 10);
        assert!(traj.enters(sys.unsafe_set()));
        let safe = simulate(&sys, |_| 0.0, &[0.05, 0.0], 0.01, 500);
        assert!(!safe.enters(sys.unsafe_set()));
    }
}

/// Multi-input extension: systems `ẋ = f(x, u₁, …, u_m)` with `m` scalar
/// control channels occupying variables `x_n … x_{n+m−1}` of the field
/// polynomials. The single-input API above is the `m = 1` special case.
impl Ccds {
    /// Creates a multi-input system. `field[i]` is `ẋᵢ` as a polynomial in
    /// `(x₀…x_{n−1}, u₁ = x_n, …, u_m = x_{n+m−1})`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches or `num_inputs == 0`.
    pub fn new_multi(
        name: impl Into<String>,
        field: Vec<Polynomial>,
        num_inputs: usize,
        init: SemiAlgebraicSet,
        domain: SemiAlgebraicSet,
        unsafe_set: SemiAlgebraicSet,
    ) -> Self {
        assert!(num_inputs >= 1, "need at least one control input");
        let n = field.len();
        assert!(n > 0, "empty vector field");
        assert_eq!(init.nvars(), n, "init set dimension mismatch");
        assert_eq!(domain.nvars(), n, "domain dimension mismatch");
        assert_eq!(unsafe_set.nvars(), n, "unsafe set dimension mismatch");
        for f in &field {
            assert!(
                f.nvars() <= n + num_inputs,
                "field component references variables beyond u_{num_inputs}"
            );
        }
        Ccds {
            name: name.into(),
            field,
            num_inputs,
            init,
            domain,
            unsafe_set,
        }
    }

    /// Number of control inputs (`1` for the scalar-input constructors).
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Evaluates the open-loop field at `(x, u)` for a vector input.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn eval_field_multi(&self, x: &[f64], u: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nvars(), "state dimension mismatch");
        assert_eq!(u.len(), self.num_inputs, "input dimension mismatch");
        let mut xu = x.to_vec();
        xu.extend_from_slice(u);
        self.field.iter().map(|f| f.eval(&xu)).collect()
    }

    /// Substitutes `uⱼ = hⱼ(x)` for every channel, returning the closed-loop
    /// polynomial field in the state variables only.
    ///
    /// # Panics
    ///
    /// Panics if `h.len() != self.num_inputs()`.
    pub fn close_loop_multi(&self, h: &[Polynomial]) -> Vec<Polynomial> {
        assert_eq!(h.len(), self.num_inputs, "one controller per input");
        let n = self.nvars();
        self.field
            .iter()
            .map(|f| {
                let mut g = f.clone();
                for (j, hj) in h.iter().enumerate() {
                    g = g.substitute(n + j, hj);
                }
                g
            })
            .collect()
    }

    /// Closed loop with per-channel interval controllers `uⱼ = hⱼ(x) + wⱼ`;
    /// the error variables `wⱼ` end up in slots `n … n+m−1`.
    ///
    /// # Panics
    ///
    /// Panics if `h.len() != self.num_inputs()`.
    pub fn close_loop_with_error_multi(&self, h: &[Polynomial]) -> Vec<Polynomial> {
        assert_eq!(h.len(), self.num_inputs, "one controller per input");
        let n = self.nvars();
        self.field
            .iter()
            .map(|f| {
                let mut g = f.clone();
                for (j, hj) in h.iter().enumerate() {
                    let hw = hj + &Polynomial::var(n + j);
                    g = g.substitute(n + j, &hw);
                }
                g
            })
            .collect()
    }
}

#[cfg(test)]
mod multi_tests {
    use super::*;

    fn two_input_system() -> Ccds {
        // ẋ₀ = u₁, ẋ₁ = u₂ (u₁ = x2, u₂ = x3).
        Ccds::new_multi(
            "double-int",
            vec!["x2".parse().unwrap(), "x3".parse().unwrap()],
            2,
            SemiAlgebraicSet::box_set(&[(-0.1, 0.1), (-0.1, 0.1)]),
            SemiAlgebraicSet::box_set(&[(-1.0, 1.0), (-1.0, 1.0)]),
            SemiAlgebraicSet::box_set(&[(0.8, 1.0), (0.8, 1.0)]),
        )
    }

    #[test]
    fn multi_close_loop_substitutes_each_channel() {
        let sys = two_input_system();
        assert_eq!(sys.num_inputs(), 2);
        let closed = sys.close_loop_multi(&[
            "-2*x0".parse().unwrap(),
            "-3*x1".parse().unwrap(),
        ]);
        assert_eq!(closed[0], "-2*x0".parse().unwrap());
        assert_eq!(closed[1], "-3*x1".parse().unwrap());
    }

    #[test]
    fn multi_error_channels_land_in_distinct_slots() {
        let sys = two_input_system();
        let robust = sys.close_loop_with_error_multi(&[
            "-2*x0".parse().unwrap(),
            "-3*x1".parse().unwrap(),
        ]);
        assert_eq!(robust[0], "-2*x0 + x2".parse().unwrap());
        assert_eq!(robust[1], "-3*x1 + x3".parse().unwrap());
    }

    #[test]
    fn multi_eval_field() {
        let sys = two_input_system();
        assert_eq!(sys.eval_field_multi(&[0.0, 0.0], &[1.5, -2.5]), vec![1.5, -2.5]);
    }

    #[test]
    fn scalar_constructor_has_one_input() {
        let sys = Ccds::new(
            "scalar",
            vec!["x1".parse().unwrap()],
            SemiAlgebraicSet::box_set(&[(-0.1, 0.1)]),
            SemiAlgebraicSet::box_set(&[(-1.0, 1.0)]),
            SemiAlgebraicSet::box_set(&[(0.8, 1.0)]),
        );
        assert_eq!(sys.num_inputs(), 1);
    }

    #[test]
    #[should_panic(expected = "one controller per input")]
    fn wrong_channel_count_panics() {
        let sys = two_input_system();
        let _ = sys.close_loop_multi(&["-x0".parse().unwrap()]);
    }
}
