//! The evaluation benchmark suite: the Academic 3D example (eq. (18)) and
//! reconstructions of C1–C14 from Table 1.
//!
//! The DAC paper cites each benchmark's dynamics from the literature
//! (\[3, 4, 5, 8, 9, 13, 16\] in its bibliography) without reprinting them.
//! This module reconstructs a suite with **exactly the published
//! signatures** — state dimension `n_x`, field degree `d_f`, and the NN
//! shapes of the `NN_B(x)` / `NN_λ(x)` columns — drawing on the publicly
//! known members of those families (the Darboux system of \[16\], polynomial
//! academic systems of \[3, 4\], bilinear stabilization chains of \[13\],
//! linear signalling cascades of \[9\], and a linearized quadcopter model of
//! \[8\]). Every entry documents its provenance in [`Benchmark::citation`].
//! Table 1's claims are about *scaling in `n_x` and `d_f`* and about which
//! tool solves which instance; those properties depend only on the preserved
//! signatures.
//!
//! Each benchmark also carries the stabilizing feedback law used as the
//! regression target for controller pre-training (the documented substitute
//! for the paper's DDPG training — the synthesis pipeline consumes only the
//! resulting fixed network).

use snbc_poly::Polynomial;

use crate::{Ccds, SemiAlgebraicSet};

/// Shape of the multiplier network `λ(x)` (Table 1's `NN_λ(x)` column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LambdaSpec {
    /// A trainable constant (the `c` entries).
    Constant,
    /// A linear network with the given hidden widths.
    Linear(Vec<usize>),
}

/// One benchmark instance: the controlled system plus everything Table 1
/// records about how SNBC is configured on it.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Display name (`C1` … `C14`, or `Academic3D`).
    pub name: &'static str,
    /// Row index in Table 1 (0 for the running example).
    pub index: usize,
    /// The controlled system `⟨f, Θ, Ψ⟩` with unsafe set `Ξ`.
    pub system: Ccds,
    /// Stabilizing feedback law regressed by the NN controller.
    pub target_law: fn(&[f64]) -> f64,
    /// Hidden widths of the quadratic network for `B(x)` (`NN_B(x)`).
    pub nn_b_hidden: Vec<usize>,
    /// Multiplier network shape (`NN_λ(x)`).
    pub lambda_spec: LambdaSpec,
    /// Where the reconstruction draws from.
    pub citation: &'static str,
    /// Published `d_f` (sanity-checked against the constructed field).
    pub d_f: u32,
}

fn p(s: &str) -> Polynomial {
    s.parse().expect("benchmark polynomial literal")
}

fn boxes(n: usize, half: f64) -> Vec<(f64, f64)> {
    vec![(-half, half); n]
}

/// The running example of §5 (eq. (18)): the academic 3D model with
/// `Ψ = [−2.2, 2.2]³`, `Θ = [−0.4, 0.4]³`, `Ξ = [2, 2.2]³`.
pub fn academic_3d() -> Benchmark {
    let field = vec![
        p("x2 + 8*x1"),        // ẋ = z + 8y
        p("-x1 + x2"),         // ẏ = −y + z
        p("-x2 - x0^2 + x3"),  // ż = −z − x² + u
    ];
    let system = Ccds::new(
        "Academic3D",
        field,
        SemiAlgebraicSet::box_set(&boxes(3, 0.4)),
        SemiAlgebraicSet::box_set(&boxes(3, 2.2)),
        SemiAlgebraicSet::box_set(&[(2.0, 2.2), (2.0, 2.2), (2.0, 2.2)]),
    );
    Benchmark {
        name: "Academic3D",
        index: 0,
        system,
        target_law: |x| -2.0 * x[0] - 8.0 * x[1] - 3.0 * x[2],
        nn_b_hidden: vec![10],
        lambda_spec: LambdaSpec::Linear(vec![5]),
        citation: "eq. (18) of the paper itself (Example 1)",
        d_f: 2,
    }
}

/// Benchmark `C_i` for `i ∈ 1..=14`.
///
/// # Panics
///
/// Panics for indices outside `1..=14`.
pub fn benchmark(i: usize) -> Benchmark {
    let b = match i {
        1 => Benchmark {
            name: "C1",
            index: 1,
            system: Ccds::new(
                "C1",
                vec![p("x1"), p("-2*x0 - 3*x1 + 0.25*x0^3 + x2")],
                SemiAlgebraicSet::box_set(&boxes(2, 0.3)),
                SemiAlgebraicSet::box_set(&boxes(2, 2.0)),
                SemiAlgebraicSet::box_set(&[(1.4, 1.9), (1.4, 1.9)]),
            ),
            target_law: |x| -x[0],
            nn_b_hidden: vec![10],
            lambda_spec: LambdaSpec::Linear(vec![5]),
            citation: "cubic academic system family of Chesi [4]",
            d_f: 3,
        },
        2 => Benchmark {
            name: "C2",
            index: 2,
            system: Ccds::new(
                "C2",
                vec![p("-x0 + 0.5*x0^2*x1"), p("-x1 + x2")],
                SemiAlgebraicSet::box_set(&boxes(2, 0.3)),
                SemiAlgebraicSet::box_set(&boxes(2, 1.2)),
                SemiAlgebraicSet::box_set(&[(0.9, 1.1), (0.9, 1.1)]),
            ),
            target_law: |x| -0.5 * x[1],
            nn_b_hidden: vec![10],
            lambda_spec: LambdaSpec::Linear(vec![5]),
            citation: "bilinear-cubic BMI benchmark family of Chen et al. [3]",
            d_f: 3,
        },
        3 => Benchmark {
            name: "C3",
            index: 3,
            system: Ccds::new(
                "C3",
                vec![p("x1"), p("-x0 - x1 + 0.5*x0^2 + x2")],
                SemiAlgebraicSet::box_set(&boxes(2, 0.3)),
                SemiAlgebraicSet::box_set(&boxes(2, 2.0)),
                SemiAlgebraicSet::box_set(&[(1.4, 1.9), (1.4, 1.9)]),
            ),
            target_law: |x| -0.5 * x[0],
            nn_b_hidden: vec![5],
            lambda_spec: LambdaSpec::Linear(vec![5]),
            citation: "quadratic academic system family of Chesi [4]",
            d_f: 2,
        },
        4 => Benchmark {
            name: "C4",
            index: 4,
            system: Ccds::new(
                "C4",
                vec![p("x1 + 2*x0*x1"), p("-x0 + 2*x0^2 - x1^2 + x2")],
                SemiAlgebraicSet::box_set(&boxes(2, 0.3)),
                SemiAlgebraicSet::box_set(&boxes(2, 2.0)),
                SemiAlgebraicSet::box_set(&[(1.5, 2.0), (1.5, 2.0)]),
            ),
            target_law: |x| -x[1],
            nn_b_hidden: vec![20],
            lambda_spec: LambdaSpec::Linear(vec![5]),
            citation: "Darboux system of Zeng et al. [16] with control channel",
            d_f: 2,
        },
        5 => Benchmark {
            name: "C5",
            index: 5,
            system: Ccds::new(
                "C5",
                vec![p("x1"), p("-x0 - x1 + 0.33*x0^3 + x2")],
                SemiAlgebraicSet::box_set(&boxes(2, 0.3)),
                SemiAlgebraicSet::box_set(&boxes(2, 1.8)),
                SemiAlgebraicSet::box_set(&[(1.3, 1.7), (1.3, 1.7)]),
            ),
            target_law: |x| -0.3 * x[0],
            nn_b_hidden: vec![5],
            lambda_spec: LambdaSpec::Linear(vec![5]),
            citation: "Darboux-type cubic benchmark of Zeng et al. [16]",
            d_f: 3,
        },
        6 => Benchmark {
            name: "C6",
            index: 6,
            system: Ccds::new(
                "C6",
                vec![
                    p("x1"),
                    p("x2"),
                    p("-x0 - 2*x1 - 2*x2 + 0.2*x0^3 + x3"),
                ],
                SemiAlgebraicSet::box_set(&boxes(3, 0.3)),
                SemiAlgebraicSet::box_set(&boxes(3, 2.0)),
                SemiAlgebraicSet::box_set(&[(1.4, 1.9), (1.4, 1.9), (1.4, 1.9)]),
            ),
            target_law: |x| -0.5 * x[0],
            nn_b_hidden: vec![5],
            lambda_spec: LambdaSpec::Linear(vec![5]),
            citation: "3-D cubic chain of Chen et al. [3]",
            d_f: 3,
        },
        7 => Benchmark {
            name: "C7",
            index: 7,
            system: Ccds::new(
                "C7",
                vec![
                    p("-x0 + x1"),
                    p("-x1 + 0.25*x2^2"),
                    p("-x2 + x3"),
                ],
                SemiAlgebraicSet::box_set(&boxes(3, 0.3)),
                SemiAlgebraicSet::box_set(&boxes(3, 2.0)),
                SemiAlgebraicSet::box_set(&[(1.4, 1.9), (1.4, 1.9), (1.4, 1.9)]),
            ),
            target_law: |x| -x[2],
            nn_b_hidden: vec![5],
            lambda_spec: LambdaSpec::Linear(vec![5]),
            citation: "NN-controller case study family of Deshmukh et al. [5]",
            d_f: 2,
        },
        8 => Benchmark {
            name: "C8",
            index: 8,
            system: Ccds::new(
                "C8",
                vec![
                    p("x1"),
                    p("-x0 - x1 + 0.25*x2^3"),
                    p("x3"),
                    p("-x2 - x3 + x4"),
                ],
                SemiAlgebraicSet::ball(&[0.0; 4], 0.3),
                SemiAlgebraicSet::ball(&[0.0; 4], 2.0),
                SemiAlgebraicSet::ball(&[1.5, 0.0, 0.0, 0.0], 0.25),
            ),
            target_law: |x| -0.5 * x[2],
            nn_b_hidden: vec![5],
            lambda_spec: LambdaSpec::Linear(vec![5]),
            citation: "coupled-oscillator cubic system family of Chesi [4]",
            d_f: 3,
        },
        9 => Benchmark {
            name: "C9",
            index: 9,
            system: Ccds::new(
                "C9",
                chain_quadratic(5),
                SemiAlgebraicSet::ball(&[0.0; 5], 0.3),
                SemiAlgebraicSet::ball(&[0.0; 5], 2.0),
                SemiAlgebraicSet::ball(&[1.5, 0.0, 0.0, 0.0, 0.0], 0.25),
            ),
            target_law: |x| -0.5 * x[4],
            nn_b_hidden: vec![10],
            lambda_spec: LambdaSpec::Linear(vec![5, 5]),
            citation: "bilinear stabilization chains of Sassi & Sankaranarayanan [13]",
            d_f: 2,
        },
        10 => Benchmark {
            name: "C10",
            index: 10,
            system: Ccds::new(
                "C10",
                chain_quadratic(6),
                SemiAlgebraicSet::ball(&[0.0; 6], 0.3),
                SemiAlgebraicSet::ball(&[0.0; 6], 2.0),
                SemiAlgebraicSet::ball(&[1.5, 0.0, 0.0, 0.0, 0.0, 0.0], 0.25),
            ),
            target_law: |x| -0.5 * x[5],
            nn_b_hidden: vec![15],
            lambda_spec: LambdaSpec::Constant,
            citation: "6-D quadratic benchmark family of Zeng et al. [16]",
            d_f: 2,
        },
        11 => Benchmark {
            name: "C11",
            index: 11,
            system: Ccds::new(
                "C11",
                chain_cubic(6),
                SemiAlgebraicSet::ball(&[0.0; 6], 0.3),
                SemiAlgebraicSet::ball(&[0.0; 6], 2.0),
                SemiAlgebraicSet::ball(&[1.5, 0.0, 0.0, 0.0, 0.0, 0.0], 0.25),
            ),
            target_law: |x| -0.5 * x[5],
            nn_b_hidden: vec![20],
            lambda_spec: LambdaSpec::Constant,
            citation: "6-D cubic benchmark family of Chen et al. [3]",
            d_f: 3,
        },
        12 => Benchmark {
            name: "C12",
            index: 12,
            system: Ccds::new(
                "C12",
                cascade_linear(7),
                SemiAlgebraicSet::ball(&[0.0; 7], 0.3),
                SemiAlgebraicSet::ball(&[0.0; 7], 2.0),
                SemiAlgebraicSet::ball(&[1.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 0.25),
            ),
            target_law: |x| -0.5 * x[0],
            nn_b_hidden: vec![20],
            lambda_spec: LambdaSpec::Linear(vec![5]),
            citation: "linear signalling cascade, systems-biology model of Klipp et al. [9]",
            d_f: 1,
        },
        13 => Benchmark {
            name: "C13",
            index: 13,
            system: Ccds::new(
                "C13",
                cascade_linear(9),
                SemiAlgebraicSet::ball(&[0.0; 9], 0.3),
                SemiAlgebraicSet::ball(&[0.0; 9], 2.0),
                SemiAlgebraicSet::ball(&[1.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 0.25),
            ),
            target_law: |x| -0.5 * x[0],
            nn_b_hidden: vec![15],
            lambda_spec: LambdaSpec::Constant,
            citation: "longer linear cascade of Klipp et al. [9]",
            d_f: 1,
        },
        14 => Benchmark {
            name: "C14",
            index: 14,
            system: Ccds::new(
                "C14",
                quadcopter_12(),
                SemiAlgebraicSet::ball(&[0.0; 12], 0.3),
                SemiAlgebraicSet::ball(&[0.0; 12], 2.0),
                SemiAlgebraicSet::ball(
                    &[1.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                    0.25,
                ),
            ),
            target_law: |x| -0.5 * x[5],
            nn_b_hidden: vec![20],
            lambda_spec: LambdaSpec::Constant,
            citation: "linearized 12-state quadcopter model from the dReal benchmarks [8]",
            d_f: 1,
        },
        other => panic!("benchmark index {other} outside 1..=14"),
    };
    debug_assert_eq!(b.system.field_degree(), b.d_f.max(1), "{}: d_f mismatch", b.name);
    b
}

/// All 14 Table 1 benchmarks in order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    (1..=14).map(benchmark).collect()
}

/// Contractive chain with quadratic coupling:
/// `ẋᵢ = −xᵢ + 0.25·xᵢ₊₁²` for `i < n−1`, `ẋ_{n−1} = −x_{n−1} + u`.
fn chain_quadratic(n: usize) -> Vec<Polynomial> {
    let mut f = Vec::with_capacity(n);
    for i in 0..n - 1 {
        f.push(p(&format!("-x{i} + 0.25*x{}^2", i + 1)));
    }
    f.push(p(&format!("-x{} + x{}", n - 1, n)));
    f
}

/// Contractive chain with cubic coupling:
/// `ẋᵢ = −xᵢ + 0.2·xᵢ₊₁³` for `i < n−1`, `ẋ_{n−1} = −x_{n−1} + u`.
fn chain_cubic(n: usize) -> Vec<Polynomial> {
    let mut f = Vec::with_capacity(n);
    for i in 0..n - 1 {
        f.push(p(&format!("-x{i} + 0.2*x{}^3", i + 1)));
    }
    f.push(p(&format!("-x{} + x{}", n - 1, n)));
    f
}

/// Linear signalling cascade: the input drives the first species, each
/// downstream species is produced from its predecessor and degrades.
fn cascade_linear(n: usize) -> Vec<Polynomial> {
    let mut f = Vec::with_capacity(n);
    f.push(p(&format!("-0.5*x0 + x{n}")));
    for i in 1..n {
        f.push(p(&format!("0.5*x{} - 0.5*x{i}", i - 1)));
    }
    f
}

/// Linearized 12-state quadcopter: position/velocity pairs per axis with
/// damped dynamics, attitude (roll, pitch, yaw) with damped rates, thrust
/// input on the vertical velocity channel. `d_f = 1`.
fn quadcopter_12() -> Vec<Polynomial> {
    // States: 0..3 positions (x, y, z), 3..6 velocities, 6..9 angles
    // (φ, θ, ψ), 9..12 angular rates (p, q, r); input u = x12.
    let mut f = Vec::with_capacity(12);
    // ṗᵢ = vᵢ
    for i in 0..3 {
        f.push(p(&format!("x{}", i + 3)));
    }
    // v̇x = −vx + 0.5θ; v̇y = −vy − 0.5φ; v̇z = −pz − vz + u.
    f.push(p("-x3 + 0.5*x7"));
    f.push(p("-x4 - 0.5*x6"));
    f.push(p("-x2 - x5 + x12"));
    // Attitude: φ̇ = p, θ̇ = q, ψ̇ = r.
    for i in 0..3 {
        f.push(p(&format!("x{}", i + 9)));
    }
    // Rates: damped second-order: ṗ = −φ − p, q̇ = −θ − q, ṙ = −ψ − r.
    for i in 0..3 {
        f.push(p(&format!("-x{} - x{}", i + 6, i + 9)));
    }
    // Positions x, y have no direct feedback: add gentle position damping so
    // the closed loop is contractive on the whole domain.
    f[0] = p("x3 - 0.2*x0");
    f[1] = p("x4 - 0.2*x1");
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;

    #[test]
    fn signatures_match_table_one() {
        let expected: [(usize, u32); 14] = [
            (2, 3),
            (2, 3),
            (2, 2),
            (2, 2),
            (2, 3),
            (3, 3),
            (3, 2),
            (4, 3),
            (5, 2),
            (6, 2),
            (6, 3),
            (7, 1),
            (9, 1),
            (12, 1),
        ];
        for (i, (nx, df)) in expected.iter().enumerate() {
            let b = benchmark(i + 1);
            assert_eq!(b.system.nvars(), *nx, "{} n_x", b.name);
            assert_eq!(b.system.field_degree(), *df, "{} d_f", b.name);
            assert_eq!(b.d_f, *df, "{} recorded d_f", b.name);
        }
    }

    #[test]
    fn academic_3d_matches_equation_18() {
        let b = academic_3d();
        // At (x, y, z) = (1, 1, 1) with u = 0: (z+8y, −y+z, −z−x²) = (9, 0, −2).
        let dx = b.system.eval_field(&[1.0, 1.0, 1.0], 0.0);
        assert_eq!(dx, vec![9.0, 0.0, -2.0]);
        // And u enters ż affinely.
        let dxu = b.system.eval_field(&[1.0, 1.0, 1.0], 2.5);
        assert_eq!(dxu[2], 0.5);
    }

    #[test]
    fn target_laws_stabilize_from_initial_corners() {
        // Every benchmark's closed loop under the *target* law keeps
        // trajectories from Θ's sampled points inside Ψ and out of Ξ for a
        // 10-second horizon — the qualitative property the DDPG controllers
        // of the paper provide.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut cases = all_benchmarks();
        cases.push(academic_3d());
        for b in &cases {
            for x0 in b.system.init().sample(5, &mut rng) {
                let traj = simulate(&b.system, b.target_law, &x0, 0.01, 1000);
                assert!(
                    !traj.enters(b.system.unsafe_set()),
                    "{}: trajectory from {x0:?} enters the unsafe set",
                    b.name
                );
                assert!(
                    traj.max_norm() < 50.0,
                    "{}: trajectory from {x0:?} diverges",
                    b.name
                );
            }
        }
    }

    #[test]
    fn initial_and_unsafe_sets_disjoint() {
        for b in all_benchmarks() {
            let c = b.system.unsafe_set().box_center();
            assert!(
                !b.system.init().contains(&c),
                "{}: unsafe center inside init set",
                b.name
            );
        }
    }

    #[test]
    #[should_panic(expected = "outside 1..=14")]
    fn out_of_range_panics() {
        let _ = benchmark(15);
    }
}
