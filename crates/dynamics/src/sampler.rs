//! Point samplers: uniform random and deterministic low-discrepancy (Halton).
//!
//! The controller-abstraction step (§3) needs mesh points over `Ψ`; in low
//! dimension a full rectangular mesh is used, but in high dimension it is
//! exponentially large, so a capped Halton set with a covering-radius estimate
//! stands in (documented substitution — Theorem 2 only needs a covering
//! radius for the sample set).

use rand::Rng;

/// First `n`-dimensional Halton point with the given 1-based `index`.
///
/// Uses the first `n` primes as bases.
///
/// # Panics
///
/// Panics if `n` exceeds the built-in prime table (64 dimensions).
pub fn halton_point(index: usize, n: usize) -> Vec<f64> {
    const PRIMES: [u32; 64] = [
        2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83,
        89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179,
        181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277,
        281, 283, 293, 307, 311,
    ];
    assert!(n <= PRIMES.len(), "at most {} dimensions supported", PRIMES.len());
    (0..n)
        .map(|d| {
            let base = u64::from(PRIMES[d]);
            let mut i = index as u64;
            let mut f = 1.0;
            let mut r = 0.0;
            while i > 0 {
                f /= base as f64;
                r += f * (i % base) as f64;
                i /= base;
            }
            r
        })
        .collect()
}

/// `count` Halton points scaled into the box `bounds`.
///
/// # Example
///
/// ```
/// let pts = snbc_dynamics::sample_box_halton(&[(0.0, 1.0), (-1.0, 1.0)], 100);
/// assert_eq!(pts.len(), 100);
/// assert!(pts.iter().all(|p| p[1] >= -1.0 && p[1] <= 1.0));
/// ```
pub fn sample_box_halton(bounds: &[(f64, f64)], count: usize) -> Vec<Vec<f64>> {
    (1..=count)
        .map(|i| {
            halton_point(i, bounds.len())
                .iter()
                .zip(bounds)
                .map(|(&u, &(lo, hi))| lo + u * (hi - lo))
                .collect()
        })
        .collect()
}

/// `count` uniform random points in the box.
pub fn sample_box_uniform(bounds: &[(f64, f64)], count: usize, rng: &mut impl Rng) -> Vec<Vec<f64>> {
    (0..count)
        .map(|_| {
            bounds
                .iter()
                .map(|&(lo, hi)| rng.gen_range(lo..=hi))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halton_is_deterministic_and_in_unit_cube() {
        let a = halton_point(5, 3);
        let b = halton_point(5, 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn halton_first_points_base2() {
        // Base-2 van der Corput: 1/2, 1/4, 3/4, 1/8, …
        assert!((halton_point(1, 1)[0] - 0.5).abs() < 1e-15);
        assert!((halton_point(2, 1)[0] - 0.25).abs() < 1e-15);
        assert!((halton_point(3, 1)[0] - 0.75).abs() < 1e-15);
    }

    #[test]
    fn halton_covers_better_than_clumped() {
        // Covering check: 64 Halton points in [0,1]² leave no empty quadrant.
        let pts = sample_box_halton(&[(0.0, 1.0), (0.0, 1.0)], 64);
        let mut quads = [0usize; 4];
        for p in &pts {
            let q = (p[0] >= 0.5) as usize * 2 + (p[1] >= 0.5) as usize;
            quads[q] += 1;
        }
        assert!(quads.iter().all(|&c| c >= 10), "{quads:?}");
    }

    #[test]
    fn uniform_sampling_respects_bounds() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let pts = sample_box_uniform(&[(-2.0, -1.0)], 20, &mut rng);
        assert!(pts.iter().all(|p| p[0] >= -2.0 && p[0] <= -1.0));
    }
}
