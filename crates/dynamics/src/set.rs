use rand::Rng;
use snbc_poly::Polynomial;

/// A compact semialgebraic set `{x ∈ ℝⁿ | g₁(x) ≥ 0, …, g_m(x) ≥ 0}` together
/// with a bounding box used for sampling (§2 of the paper: `Θ`, `Ψ`, `Ξ` are
/// all of this form).
///
/// # Example
///
/// ```
/// use snbc_dynamics::SemiAlgebraicSet;
///
/// let s = SemiAlgebraicSet::box_set(&[(-1.0, 1.0), (0.0, 2.0)]);
/// assert!(s.contains(&[0.5, 1.0]));
/// assert!(!s.contains(&[1.5, 1.0]));
/// ```
#[derive(Debug, Clone)]
pub struct SemiAlgebraicSet {
    nvars: usize,
    polys: Vec<Polynomial>,
    bounds: Vec<(f64, f64)>,
    kind: SetKind,
}

/// Shape information enabling direct (rejection-free) sampling.
#[derive(Debug, Clone)]
enum SetKind {
    /// An axis-aligned box (sampling is uniform per dimension).
    Box,
    /// A Euclidean ball (sampled via Gaussian direction and radius
    /// `R·u^{1/n}` — essential in high dimension, where rejection from the
    /// bounding box accepts a vanishing fraction of draws).
    Ball { center: Vec<f64>, radius: f64 },
    /// General constraints: rejection sampling from the bounding box.
    General,
}

impl SemiAlgebraicSet {
    /// An axis-aligned box. Each dimension contributes one quadratic
    /// constraint `(xᵢ − lo)(hi − xᵢ) ≥ 0` — the standard encoding in the
    /// barrier-certificate literature, giving one SOS multiplier per
    /// dimension rather than two.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or a pair is inverted.
    pub fn box_set(bounds: &[(f64, f64)]) -> Self {
        assert!(!bounds.is_empty(), "empty box");
        let polys = bounds
            .iter()
            .enumerate()
            .map(|(i, &(lo, hi))| {
                assert!(lo < hi, "inverted bound [{lo}, {hi}]");
                let xi = Polynomial::var(i);
                let a = &xi - &Polynomial::constant(lo);
                let b = &Polynomial::constant(hi) - &xi;
                &a * &b
            })
            .collect();
        SemiAlgebraicSet {
            nvars: bounds.len(),
            polys,
            bounds: bounds.to_vec(),
            kind: SetKind::Box,
        }
    }

    /// A Euclidean ball `‖x − c‖² ≤ r²` (a single constraint — the preferred
    /// encoding for high-dimensional benchmarks where multiplier count
    /// dominates SDP size).
    ///
    /// # Panics
    ///
    /// Panics if `center` is empty or `radius ≤ 0`.
    pub fn ball(center: &[f64], radius: f64) -> Self {
        assert!(!center.is_empty(), "empty center");
        assert!(radius > 0.0, "radius must be positive");
        let mut p = Polynomial::constant(radius * radius);
        for (i, &c) in center.iter().enumerate() {
            let d = &Polynomial::var(i) - &Polynomial::constant(c);
            p -= &(&d * &d);
        }
        let bounds = center.iter().map(|&c| (c - radius, c + radius)).collect();
        SemiAlgebraicSet {
            nvars: center.len(),
            polys: vec![p],
            bounds,
            kind: SetKind::Ball {
                center: center.to_vec(),
                radius,
            },
        }
    }

    /// A set from explicit constraints `gᵢ(x) ≥ 0` plus a bounding box for
    /// sampling.
    ///
    /// # Panics
    ///
    /// Panics if a polynomial references variables beyond the box dimension.
    pub fn from_polys(polys: Vec<Polynomial>, bounds: &[(f64, f64)]) -> Self {
        for p in &polys {
            assert!(
                p.nvars() <= bounds.len(),
                "constraint uses variable beyond bounding box dimension"
            );
        }
        SemiAlgebraicSet {
            nvars: bounds.len(),
            polys,
            bounds: bounds.to_vec(),
            kind: SetKind::General,
        }
    }

    /// Ambient dimension.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// The defining inequalities `gᵢ(x) ≥ 0`.
    pub fn polys(&self) -> &[Polynomial] {
        &self.polys
    }

    /// The sampling bounding box.
    pub fn bounding_box(&self) -> &[(f64, f64)] {
        &self.bounds
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() < self.nvars()`.
    pub fn contains(&self, x: &[f64]) -> bool {
        assert!(x.len() >= self.nvars, "point dimension mismatch");
        let in_box = self
            .bounds
            .iter()
            .zip(x)
            .all(|(&(lo, hi), &v)| v >= lo - 1e-12 && v <= hi + 1e-12);
        in_box && self.polys.iter().all(|g| g.eval(x) >= -1e-12)
    }

    /// Draws `count` points uniformly from the set. Boxes and balls are
    /// sampled directly (no rejection — crucial for high-dimensional balls,
    /// whose bounding-box acceptance rate decays like `(π/4)^{n/2}`);
    /// general sets fall back to rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if rejection sampling of a general set stalls (over 10 000×
    /// oversampling), indicating a degenerate set description.
    pub fn sample(&self, count: usize, rng: &mut impl Rng) -> Vec<Vec<f64>> {
        match &self.kind {
            SetKind::Box => (0..count)
                .map(|_| {
                    self.bounds
                        .iter()
                        .map(|&(lo, hi)| rng.gen_range(lo..=hi))
                        .collect()
                })
                .collect(),
            SetKind::Ball { center, radius } => (0..count)
                .map(|_| {
                    // Gaussian direction, radius R·u^{1/n}: uniform in the ball.
                    let dir: Vec<f64> = (0..self.nvars)
                        .map(|_| {
                            let u1: f64 = rng.gen_range(1e-12..1.0);
                            let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                            (-2.0 * u1.ln()).sqrt() * u2.cos()
                        })
                        .collect();
                    let norm = dir.iter().map(|d| d * d).sum::<f64>().sqrt().max(1e-300);
                    let r = radius * rng.gen_range(0.0_f64..1.0).powf(1.0 / self.nvars as f64);
                    center
                        .iter()
                        .zip(&dir)
                        .map(|(c, d)| c + r * d / norm)
                        .collect()
                })
                .collect(),
            SetKind::General => {
                let mut out = Vec::with_capacity(count);
                let mut attempts = 0usize;
                while out.len() < count {
                    attempts += 1;
                    assert!(
                        attempts <= 10_000 * count.max(1),
                        "rejection sampling stalled: set volume too small relative to its box"
                    );
                    let x: Vec<f64> = self
                        .bounds
                        .iter()
                        .map(|&(lo, hi)| rng.gen_range(lo..=hi))
                        .collect();
                    if self.contains(&x) {
                        out.push(x);
                    }
                }
                out
            }
        }
    }

    /// The center of the bounding box (a cheap interior heuristic).
    pub fn box_center(&self) -> Vec<f64> {
        self.bounds.iter().map(|&(lo, hi)| 0.5 * (lo + hi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn box_membership() {
        let s = SemiAlgebraicSet::box_set(&[(-1.0, 1.0), (0.0, 2.0)]);
        assert!(s.contains(&[0.0, 1.0]));
        assert!(s.contains(&[1.0, 2.0])); // boundary
        assert!(!s.contains(&[0.0, -0.1]));
        assert_eq!(s.polys().len(), 2);
    }

    #[test]
    fn ball_membership() {
        let s = SemiAlgebraicSet::ball(&[1.0, 0.0], 0.5);
        assert!(s.contains(&[1.0, 0.0]));
        assert!(s.contains(&[1.4, 0.0]));
        assert!(!s.contains(&[1.6, 0.0]));
        assert_eq!(s.polys().len(), 1);
    }

    #[test]
    fn samples_lie_inside() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = SemiAlgebraicSet::ball(&[0.0, 0.0, 0.0], 1.0);
        for x in s.sample(50, &mut rng) {
            assert!(s.contains(&x));
        }
    }

    #[test]
    fn from_polys_half_space() {
        let g: Polynomial = "x0 - x1".parse().unwrap();
        let s = SemiAlgebraicSet::from_polys(vec![g], &[(-1.0, 1.0), (-1.0, 1.0)]);
        assert!(s.contains(&[0.5, 0.0]));
        assert!(!s.contains(&[0.0, 0.5]));
    }

    #[test]
    #[should_panic(expected = "inverted bound")]
    fn inverted_bounds_panic() {
        let _ = SemiAlgebraicSet::box_set(&[(1.0, -1.0)]);
    }
}
