//! The live `snbc-progress/1` NDJSON stream: typed pipeline events.
//!
//! # Event vocabulary
//!
//! | `ev`          | emitted by                         | payload |
//! |---------------|------------------------------------|---------|
//! | `stream-start`| the writer sink, as line 0         | `schema` |
//! | `job-start`   | `run_batch`, per job               | `name` |
//! | `learn-epoch` | `CegisEngine::step`, per round     | `round`, `loss` |
//! | `verify-rung` | `CegisEngine::step`, ×3 per round  | `round`, `rung`, `feasible`, `margin` |
//! | `cex`         | `CegisEngine::step`, per failed round | `round`, `points`, `interval_fallback` |
//! | `round`       | `CegisEngine::step`, round summary | `round`, `status` |
//! | `wave`        | `race()`, per wave barrier         | `wave`, `live`, `certified` |
//! | `cache-hit`   | `run_batch`, cache-served job      | — (environmental) |
//! | `job-done`    | `run_batch`, per job               | `name`, `certified`, `candidates`, `waves`, `winner_index`, `iterations` |
//!
//! Every line is one compact JSON object: `seq` first (monotonically
//! increasing, assigned by the writer sink), then `ev`, the optional
//! `job`/`cand` scope, the payload, and — on **live** streams only — a
//! trailing `t_us` timestamp from [`snbc_trace::now_us`]. A **canonical**
//! writer strips `t_us` and skips *environmental* events (`cache-hit`), so
//! the canonical stream for a job set is byte-identical across
//! `SNBC_THREADS` settings and cache temperature.
//!
//! # Sinks and determinism
//!
//! A [`Progress`] handle wraps one sink:
//!
//! * **writer** — serializes each event as an NDJSON line, line-buffered
//!   (every line is flushed, so `--progress -` streams live);
//! * **buffer** — records events for later [`Progress::drain_into`]; racing
//!   candidates each get one via [`Progress::fork_buffer`] and the race
//!   driver drains them **in grid-index order at the wave barrier**, which
//!   is what keeps the merged stream order thread-count-invariant;
//! * **capture** — records the canonical line text of each event (scope
//!   `job` omitted, no `seq`/`t_us`); this is the `progress.ndjson`
//!   artifact stored next to a cached certificate, replayed on a cache hit
//!   so the canonical stream stays byte-identical cold vs. warm;
//! * **fanout** — broadcasts to several sinks (the CLI combines an NDJSON
//!   writer with its human stderr renderer);
//! * **custom** — any [`EventSink`] implementation.
//!
//! Replayed events (from a cache entry) reach canonical writers — which
//! re-sequence them — but are skipped by live writers and flagged to custom
//! sinks, because a live consumer wants the `cache-hit` marker, not a
//! re-enactment of a race that did not run.

use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};

use snbc_trace::json::{self, Value};

/// Schema tag of the progress stream (carried by the `stream-start` line).
pub const PROGRESS_SCHEMA: &str = "snbc-progress/1";

/// Where an event happened: which batch job, which racing candidate.
/// Applied by [`Progress::with_job`] / [`Progress::with_candidate`];
/// serialized as the optional `job` / `cand` line fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Scope {
    pub job: Option<u64>,
    pub candidate: Option<u64>,
}

/// A typed pipeline event. See the module docs for the emission sites.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// A batch job began.
    JobStart { name: String },
    /// One learner training pass (the per-round "epoch" of Algorithm 1
    /// step 3/9) finished with this final loss.
    LearnEpoch { round: u64, loss: f64 },
    /// One verifier rung (`init` / `unsafe` / `flow`) was checked.
    VerifyRung {
        round: u64,
        rung: String,
        feasible: bool,
        margin: f64,
    },
    /// The counterexample phase of a failed round fed back `points`
    /// samples (`interval_fallback`: the δ-complete oracle was needed).
    Cex {
        round: u64,
        points: u64,
        interval_fallback: bool,
    },
    /// A CEGIS round finished with this status
    /// (`in-progress` / `certified` / `exhausted` / `timed-out`).
    Round { round: u64, status: String },
    /// A race wave barrier: `live` candidates still running, `certified`
    /// already done with a certificate.
    Wave { wave: u64, live: u64, certified: u64 },
    /// The job was served from the certificate cache (environmental: the
    /// canonical stream never contains it).
    CacheHit,
    /// A batch job finished.
    JobDone {
        name: String,
        certified: bool,
        candidates: u64,
        waves: u64,
        winner_index: Option<u64>,
        iterations: Option<u64>,
    },
}

impl ProgressEvent {
    /// The `ev` tag.
    pub fn tag(&self) -> &'static str {
        match self {
            ProgressEvent::JobStart { .. } => "job-start",
            ProgressEvent::LearnEpoch { .. } => "learn-epoch",
            ProgressEvent::VerifyRung { .. } => "verify-rung",
            ProgressEvent::Cex { .. } => "cex",
            ProgressEvent::Round { .. } => "round",
            ProgressEvent::Wave { .. } => "wave",
            ProgressEvent::CacheHit => "cache-hit",
            ProgressEvent::JobDone { .. } => "job-done",
        }
    }

    /// Whether the event describes run *environment* (cache temperature)
    /// rather than the mathematical run; environmental events are excluded
    /// from canonical streams and capture artifacts.
    pub fn is_environmental(&self) -> bool {
        matches!(self, ProgressEvent::CacheHit)
    }
}

/// The `(key, value)` pairs of an event line, **without** `seq`/`t_us`:
/// `ev`, the scope, then the payload. Shared by the writer, the capture
/// sink, and the parser so all three agree byte-for-byte.
fn event_pairs(scope: Scope, ev: &ProgressEvent) -> Vec<(String, Value)> {
    let mut pairs = vec![("ev".to_string(), Value::Str(ev.tag().to_string()))];
    if let Some(job) = scope.job {
        pairs.push(("job".to_string(), Value::Int(job)));
    }
    if let Some(cand) = scope.candidate {
        pairs.push(("cand".to_string(), Value::Int(cand)));
    }
    let opt_int = |v: Option<u64>| match v {
        Some(n) => Value::Int(n),
        None => Value::Null,
    };
    match ev {
        ProgressEvent::JobStart { name } => {
            pairs.push(("name".to_string(), Value::Str(name.clone())));
        }
        ProgressEvent::LearnEpoch { round, loss } => {
            pairs.push(("round".to_string(), Value::Int(*round)));
            pairs.push(("loss".to_string(), Value::Num(*loss)));
        }
        ProgressEvent::VerifyRung {
            round,
            rung,
            feasible,
            margin,
        } => {
            pairs.push(("round".to_string(), Value::Int(*round)));
            pairs.push(("rung".to_string(), Value::Str(rung.clone())));
            pairs.push(("feasible".to_string(), Value::Bool(*feasible)));
            pairs.push(("margin".to_string(), Value::Num(*margin)));
        }
        ProgressEvent::Cex {
            round,
            points,
            interval_fallback,
        } => {
            pairs.push(("round".to_string(), Value::Int(*round)));
            pairs.push(("points".to_string(), Value::Int(*points)));
            pairs.push(("interval_fallback".to_string(), Value::Bool(*interval_fallback)));
        }
        ProgressEvent::Round { round, status } => {
            pairs.push(("round".to_string(), Value::Int(*round)));
            pairs.push(("status".to_string(), Value::Str(status.clone())));
        }
        ProgressEvent::Wave {
            wave,
            live,
            certified,
        } => {
            pairs.push(("wave".to_string(), Value::Int(*wave)));
            pairs.push(("live".to_string(), Value::Int(*live)));
            pairs.push(("certified".to_string(), Value::Int(*certified)));
        }
        ProgressEvent::CacheHit => {}
        ProgressEvent::JobDone {
            name,
            certified,
            candidates,
            waves,
            winner_index,
            iterations,
        } => {
            pairs.push(("name".to_string(), Value::Str(name.clone())));
            pairs.push(("certified".to_string(), Value::Bool(*certified)));
            pairs.push(("candidates".to_string(), Value::Int(*candidates)));
            pairs.push(("waves".to_string(), Value::Int(*waves)));
            pairs.push(("winner_index".to_string(), opt_int(*winner_index)));
            pairs.push(("iterations".to_string(), opt_int(*iterations)));
        }
    }
    pairs
}

/// Parses one event line object back into its scope and event. Inverse of
/// `event_pairs`; a parsed event re-serializes byte-identically (JSON
/// floats use shortest-round-trip formatting, and non-finite values map to
/// `null` in both directions, read back as `NaN`).
pub fn event_from_value(v: &Value) -> Result<(Scope, ProgressEvent), String> {
    let tag = v
        .get("ev")
        .and_then(Value::as_str)
        .ok_or("event line missing `ev`")?;
    let scope = Scope {
        job: v.get("job").and_then(Value::as_u64),
        candidate: v.get("cand").and_then(Value::as_u64),
    };
    let int = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("`{tag}` missing integer `{key}`"))
    };
    let opt_int = |key: &str| -> Result<Option<u64>, String> {
        match v.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(x) => x
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("`{tag}`: `{key}` must be an integer or null")),
        }
    };
    let text = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("`{tag}` missing string `{key}`"))
    };
    let flag = |key: &str| -> Result<bool, String> {
        match v.get(key) {
            Some(Value::Bool(b)) => Ok(*b),
            _ => Err(format!("`{tag}` missing bool `{key}`")),
        }
    };
    // `null` is how the writer encodes a non-finite float; NaN re-encodes
    // as `null`, so the round-trip stays byte-stable.
    let float = |key: &str| -> Result<f64, String> {
        match v.get(key) {
            Some(Value::Null) => Ok(f64::NAN),
            Some(x) => x
                .as_f64()
                .ok_or_else(|| format!("`{tag}`: `{key}` must be a number or null")),
            None => Err(format!("`{tag}` missing number `{key}`")),
        }
    };
    let ev = match tag {
        "job-start" => ProgressEvent::JobStart { name: text("name")? },
        "learn-epoch" => ProgressEvent::LearnEpoch {
            round: int("round")?,
            loss: float("loss")?,
        },
        "verify-rung" => ProgressEvent::VerifyRung {
            round: int("round")?,
            rung: text("rung")?,
            feasible: flag("feasible")?,
            margin: float("margin")?,
        },
        "cex" => ProgressEvent::Cex {
            round: int("round")?,
            points: int("points")?,
            interval_fallback: flag("interval_fallback")?,
        },
        "round" => ProgressEvent::Round {
            round: int("round")?,
            status: text("status")?,
        },
        "wave" => ProgressEvent::Wave {
            wave: int("wave")?,
            live: int("live")?,
            certified: int("certified")?,
        },
        "cache-hit" => ProgressEvent::CacheHit,
        "job-done" => ProgressEvent::JobDone {
            name: text("name")?,
            certified: flag("certified")?,
            candidates: int("candidates")?,
            waves: int("waves")?,
            winner_index: opt_int("winner_index")?,
            iterations: opt_int("iterations")?,
        },
        other => return Err(format!("unknown progress event `{other}`")),
    };
    Ok((scope, ev))
}

/// Parses a captured event stream (one compact JSON object per line, as
/// stored in a cache entry's `progress.ndjson`). Strict: any malformed
/// line fails the whole stream, so a corrupt cache artifact degrades to a
/// cache miss rather than a corrupt replay.
///
/// # Errors
///
/// The first malformed line's parse error.
pub fn parse_stream(text: &str) -> Result<Vec<(Scope, ProgressEvent)>, String> {
    let mut events = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| e.to_string())?;
        events.push(event_from_value(&v)?);
    }
    Ok(events)
}

/// Consumer interface for in-process event subscribers (the CLI's human
/// stderr renderer). `replayed` marks events reconstructed from a cache
/// entry rather than produced by a live race.
pub trait EventSink: Send + Sync {
    fn event(&self, scope: Scope, event: &ProgressEvent, replayed: bool);
}

struct WriterState {
    out: Box<dyn Write + Send>,
    seq: u64,
}

enum SinkKind {
    Writer {
        state: Mutex<WriterState>,
        canonical: bool,
    },
    Buffer(Mutex<Vec<(Scope, ProgressEvent)>>),
    Capture(Mutex<Vec<String>>),
    Fanout(Vec<Progress>),
    Custom(Box<dyn EventSink>),
}

/// A handle to a progress sink; cheap to clone, no-op when off. The handle
/// carries the [`Scope`] its events are attributed to — scoping is done by
/// cloning ([`Progress::with_job`], [`Progress::with_candidate`]), so one
/// sink can serve many scopes concurrently.
#[derive(Clone, Default)]
pub struct Progress {
    sink: Option<Arc<SinkKind>>,
    scope: Scope,
}

impl std::fmt::Debug for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.sink.as_deref() {
            None => "off",
            Some(SinkKind::Writer { canonical: true, .. }) => "writer(canonical)",
            Some(SinkKind::Writer { .. }) => "writer",
            Some(SinkKind::Buffer(_)) => "buffer",
            Some(SinkKind::Capture(_)) => "capture",
            Some(SinkKind::Fanout(_)) => "fanout",
            Some(SinkKind::Custom(_)) => "custom",
        };
        f.debug_struct("Progress")
            .field("sink", &kind)
            .field("scope", &self.scope)
            .finish()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Progress {
    /// A disabled handle: every emit is a no-op.
    pub fn off() -> Progress {
        Progress::default()
    }

    /// An NDJSON writer sink. Writes the `stream-start` header line
    /// immediately; every subsequent event becomes one line, flushed as it
    /// is written (line-buffered). With `canonical = true` the stream
    /// omits `t_us`, skips environmental events, and accepts replayed
    /// events — see the module docs.
    pub fn writer(out: Box<dyn Write + Send>, canonical: bool) -> Progress {
        let mut state = WriterState { out, seq: 0 };
        let mut pairs = vec![
            ("seq".to_string(), Value::Int(0)),
            ("ev".to_string(), Value::Str("stream-start".to_string())),
            ("schema".to_string(), Value::Str(PROGRESS_SCHEMA.to_string())),
        ];
        if !canonical {
            pairs.push(("t_us".to_string(), Value::Int(snbc_trace::now_us())));
        }
        write_line(&mut state, &Value::Obj(pairs));
        state.seq = 1;
        Progress {
            sink: Some(Arc::new(SinkKind::Writer {
                state: Mutex::new(state),
                canonical,
            })),
            scope: Scope::default(),
        }
    }

    /// A buffering sink: events are held (with their scope) until
    /// [`Progress::drain_into`] re-emits them elsewhere.
    pub fn buffer() -> Progress {
        Progress {
            sink: Some(Arc::new(SinkKind::Buffer(Mutex::new(Vec::new())))),
            scope: Scope::default(),
        }
    }

    /// A capture sink: records the canonical line text of every
    /// non-environmental event, `job` scope omitted (the job index is
    /// reassigned at replay). This is the cache artifact producer.
    pub fn capture() -> Progress {
        Progress {
            sink: Some(Arc::new(SinkKind::Capture(Mutex::new(Vec::new())))),
            scope: Scope::default(),
        }
    }

    /// Broadcasts every event to each of `parts`. A part keeps its own
    /// scope fields where set; unset fields inherit the delivering scope —
    /// so a job-scoped writer and an unscoped capture sink can share one
    /// fanout.
    pub fn fanout(parts: Vec<Progress>) -> Progress {
        let live: Vec<Progress> = parts.into_iter().filter(Progress::is_on).collect();
        if live.is_empty() {
            return Progress::off();
        }
        Progress {
            sink: Some(Arc::new(SinkKind::Fanout(live))),
            scope: Scope::default(),
        }
    }

    /// Wraps an [`EventSink`] implementation.
    pub fn custom(sink: Box<dyn EventSink>) -> Progress {
        Progress {
            sink: Some(Arc::new(SinkKind::Custom(sink))),
            scope: Scope::default(),
        }
    }

    /// Whether events go anywhere. Instrumented code can gate event
    /// construction on this.
    pub fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    /// This handle with the `job` scope field set.
    #[must_use]
    pub fn with_job(&self, job: u64) -> Progress {
        let mut p = self.clone();
        p.scope.job = Some(job);
        p
    }

    /// This handle with the `cand` scope field set.
    #[must_use]
    pub fn with_candidate(&self, candidate: u64) -> Progress {
        let mut p = self.clone();
        p.scope.candidate = Some(candidate);
        p
    }

    /// A fresh buffer handle inheriting this handle's scope, or an off
    /// handle when this one is off. Racing candidates record into forks and
    /// the driver drains them in grid order at the wave barrier.
    #[must_use]
    pub fn fork_buffer(&self) -> Progress {
        if !self.is_on() {
            return Progress::off();
        }
        let mut p = Progress::buffer();
        p.scope = self.scope;
        p
    }

    /// Emits one live event under this handle's scope.
    pub fn emit(&self, event: ProgressEvent) {
        self.deliver(self.scope, &event, false);
    }

    /// Drains a buffer sink's recorded events into `target`, preserving
    /// each event's recorded scope. No-op on other sink kinds.
    pub fn drain_into(&self, target: &Progress) {
        if let Some(SinkKind::Buffer(buf)) = self.sink.as_deref() {
            let events = std::mem::take(&mut *lock(buf));
            for (scope, ev) in events {
                target.deliver(scope, &ev, false);
            }
        }
    }

    /// Re-emits events parsed from a cache entry (see [`parse_stream`])
    /// as **replayed**: canonical writers re-sequence and write them, live
    /// writers skip them, custom sinks see `replayed = true`. Each event's
    /// stored `cand` scope is kept; its `job` scope is replaced by this
    /// handle's (the artifact is content-addressed, so the job index it ran
    /// under is meaningless here).
    pub fn replay(&self, events: &[(Scope, ProgressEvent)]) {
        for (stored, ev) in events {
            let scope = Scope {
                job: self.scope.job,
                candidate: stored.candidate,
            };
            self.deliver(scope, ev, true);
        }
    }

    /// The captured canonical lines (capture sinks only; empty otherwise),
    /// newline-terminated.
    pub fn captured(&self) -> String {
        match self.sink.as_deref() {
            Some(SinkKind::Capture(lines)) => {
                let lines = lock(lines);
                let mut out = String::new();
                for line in lines.iter() {
                    out.push_str(line);
                    out.push('\n');
                }
                out
            }
            _ => String::new(),
        }
    }

    fn deliver(&self, scope: Scope, ev: &ProgressEvent, replayed: bool) {
        let Some(sink) = self.sink.as_deref() else {
            return;
        };
        match sink {
            SinkKind::Writer { state, canonical } => {
                // Live writers show `cache-hit` and skip the replayed race;
                // canonical writers do the opposite — that swap is exactly
                // what makes the canonical stream cache-temperature-blind.
                if *canonical && ev.is_environmental() {
                    return;
                }
                if !*canonical && replayed {
                    return;
                }
                let mut st = lock(state);
                let mut pairs = vec![("seq".to_string(), Value::Int(st.seq))];
                pairs.extend(event_pairs(scope, ev));
                if !*canonical {
                    pairs.push(("t_us".to_string(), Value::Int(snbc_trace::now_us())));
                }
                write_line(&mut st, &Value::Obj(pairs));
                st.seq += 1;
            }
            SinkKind::Buffer(buf) => lock(buf).push((scope, ev.clone())),
            SinkKind::Capture(lines) => {
                if ev.is_environmental() {
                    return;
                }
                let no_job = Scope {
                    job: None,
                    candidate: scope.candidate,
                };
                lock(lines).push(Value::Obj(event_pairs(no_job, ev)).to_compact_string());
            }
            SinkKind::Fanout(parts) => {
                for part in parts {
                    let merged = Scope {
                        job: part.scope.job.or(scope.job),
                        candidate: part.scope.candidate.or(scope.candidate),
                    };
                    part.deliver(merged, ev, replayed);
                }
            }
            SinkKind::Custom(consumer) => consumer.event(scope, ev, replayed),
        }
    }
}

/// Writes one compact line plus newline and flushes (line-buffered
/// semantics, so `--progress -` streams live). Best-effort: observability
/// must never fail the pipeline, so I/O errors are dropped.
fn write_line(st: &mut WriterState, line: &Value) {
    let mut text = line.to_compact_string();
    text.push('\n');
    let _ = st.out.write_all(text.as_bytes()); // audit:allow(swallowed-result)
    let _ = st.out.flush(); // audit:allow(swallowed-result)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Write` target backed by shared memory, so tests can read what a
    /// writer sink produced.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Shared {
        fn text(&self) -> String {
            String::from_utf8(lock(&self.0).clone()).expect("utf-8")
        }
    }

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            lock(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sample_events() -> Vec<ProgressEvent> {
        vec![
            ProgressEvent::JobStart { name: "c3".to_string() },
            ProgressEvent::LearnEpoch { round: 1, loss: 0.125 },
            ProgressEvent::VerifyRung {
                round: 1,
                rung: "flow".to_string(),
                feasible: false,
                margin: -0.5,
            },
            ProgressEvent::Cex { round: 1, points: 7, interval_fallback: true },
            ProgressEvent::Round { round: 1, status: "in-progress".to_string() },
            ProgressEvent::Wave { wave: 2, live: 1, certified: 1 },
            ProgressEvent::CacheHit,
            ProgressEvent::JobDone {
                name: "c3".to_string(),
                certified: true,
                candidates: 2,
                waves: 3,
                winner_index: Some(1),
                iterations: Some(2),
            },
        ]
    }

    #[test]
    fn events_round_trip_through_json() {
        for ev in sample_events() {
            let scope = Scope { job: Some(3), candidate: Some(1) };
            let line = Value::Obj(event_pairs(scope, &ev)).to_compact_string();
            let (back_scope, back) = event_from_value(&json::parse(&line).expect("parses"))
                .expect("event parses");
            assert_eq!(back_scope, scope, "scope for {line}");
            assert_eq!(back, ev, "event for {line}");
            // And re-serialization is byte-identical.
            let again = Value::Obj(event_pairs(back_scope, &back)).to_compact_string();
            assert_eq!(again, line);
        }
    }

    #[test]
    fn writer_assigns_monotonic_seq_and_canonical_strips_time() {
        let live_out = Shared::default();
        let live = Progress::writer(Box::new(live_out.clone()), false);
        let canon_out = Shared::default();
        let canon = Progress::writer(Box::new(canon_out.clone()), true).with_job(0);
        for ev in sample_events() {
            live.emit(ev.clone());
            canon.emit(ev);
        }
        let live_lines: Vec<String> = live_out.text().lines().map(str::to_string).collect();
        // Header + 8 events.
        assert_eq!(live_lines.len(), 9);
        assert!(live_lines[0].contains("\"ev\":\"stream-start\""));
        assert!(live_lines[0].contains(PROGRESS_SCHEMA));
        for (i, line) in live_lines.iter().enumerate() {
            assert!(
                line.starts_with(&format!("{{\"seq\":{i},")),
                "line {i} reads {line}"
            );
            assert!(line.contains("\"t_us\":"), "live lines carry time: {line}");
        }
        let canon_lines: Vec<String> = canon_out.text().lines().map(str::to_string).collect();
        // Header + 7 events: `cache-hit` is environmental and skipped.
        assert_eq!(canon_lines.len(), 8);
        for line in &canon_lines {
            assert!(!line.contains("t_us"), "canonical strips time: {line}");
            assert!(!line.contains("cache-hit"));
        }
        assert!(canon_lines[1].contains("\"job\":0"));
    }

    #[test]
    fn buffers_drain_in_recorded_order_with_scopes() {
        let out = Shared::default();
        let root = Progress::writer(Box::new(out.clone()), true).with_job(5);
        let cand = root.fork_buffer().with_candidate(2);
        cand.emit(ProgressEvent::Round { round: 1, status: "in-progress".to_string() });
        cand.emit(ProgressEvent::Round { round: 2, status: "certified".to_string() });
        assert_eq!(out.text().lines().count(), 1, "buffered, not yet written");
        cand.drain_into(&root);
        let text = out.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("\"job\":5"));
        assert!(lines[1].contains("\"cand\":2"));
        assert!(lines[1].contains("\"round\":1"));
        assert!(lines[2].contains("\"round\":2"));
    }

    #[test]
    fn capture_and_replay_reproduce_the_canonical_stream() {
        // Cold run: canonical writer + capture fan out behind one scope.
        let cold_out = Shared::default();
        let cap = Progress::capture();
        let cold = Progress::fanout(vec![
            Progress::writer(Box::new(cold_out.clone()), true),
            cap.clone(),
        ])
        .with_job(1);
        for ev in sample_events() {
            cold.emit(ev);
        }
        let stored = cap.captured();
        assert!(!stored.contains("\"job\""), "capture omits the job index");
        assert!(!stored.contains("cache-hit"), "capture omits environmental events");

        // Warm run: the same job is served from the cache and replayed.
        let warm_out = Shared::default();
        let warm = Progress::writer(Box::new(warm_out.clone()), true).with_job(1);
        warm.emit(ProgressEvent::CacheHit); // canonical writers skip it
        let events = parse_stream(&stored).expect("stored stream parses");
        warm.replay(&events);

        assert_eq!(cold_out.text(), warm_out.text(), "cold and warm canonical streams match");

        // A live writer sees the cache-hit marker but not the replay.
        let live_out = Shared::default();
        let live = Progress::writer(Box::new(live_out.clone()), false).with_job(1);
        live.emit(ProgressEvent::CacheHit);
        live.replay(&events);
        let text = live_out.text();
        assert_eq!(text.lines().count(), 2, "header + cache-hit only:\n{text}");
        assert!(text.contains("cache-hit"));
    }

    #[test]
    fn corrupt_stored_streams_fail_to_parse() {
        assert!(parse_stream("{\"ev\":\"round\",\"round\":1,\"status\":\"x\"}").is_ok());
        assert!(parse_stream("not json").is_err());
        assert!(parse_stream("{\"ev\":\"no-such-event\"}").is_err());
        assert!(parse_stream("{\"ev\":\"round\",\"round\":1}").is_err(), "missing field");
    }
}
