//! Prometheus text-exposition writer (textfile-collector style).
//!
//! The container has no network, so there is no scrape endpoint: `snbc
//! batch --metrics-out <path>` writes the exposition to a file that a
//! `node_exporter` textfile collector (or a human) can pick up. The writer
//! renders a **full** [`MetricsSnapshot`] — environmental entries included,
//! since operational dashboards are exactly where cache hit rates belong.
//!
//! Output is deterministic: metrics arrive name-sorted from the snapshot,
//! each rendered as `# HELP` / `# TYPE` / samples. Histograms follow the
//! Prometheus convention of **cumulative** `_bucket{le="..."}` series
//! ending in `le="+Inf"`, plus `_sum` and `_count`.

use crate::registry::MetricsSnapshot;

/// Renders the snapshot as Prometheus text exposition (format version
/// 0.0.4). All metric names are prefixed `snbc_` and sanitized to the
/// Prometheus name alphabet.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let name = metric_name(&c.name);
        header(&mut out, &name, "counter", &c.name);
        out.push_str(&format!("{name} {}\n", c.value));
    }
    for g in &snap.gauges {
        let name = metric_name(&g.name);
        header(&mut out, &name, "gauge", &g.name);
        out.push_str(&format!("{name} {}\n", number(g.value)));
    }
    for h in &snap.hists {
        let name = metric_name(&h.name);
        header(&mut out, &name, "histogram", &h.name);
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.counts) {
            cumulative += count;
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                number(*bound)
            ));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{name}_sum {}\n", number(h.sum)));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    out
}

fn header(out: &mut String, name: &str, kind: &str, raw: &str) {
    out.push_str(&format!("# HELP {name} snbc-metrics/1 {kind} {raw}\n"));
    out.push_str(&format!("# TYPE {name} {kind}\n"));
}

/// `snbc_` prefix plus the name mapped onto `[a-zA-Z0-9_]`.
fn metric_name(raw: &str) -> String {
    let mut name = String::with_capacity(raw.len() + 5);
    name.push_str("snbc_");
    for c in raw.chars() {
        name.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    name
}

/// Prometheus float formatting: Rust's shortest-round-trip `Display` for
/// finite values, the spec's spellings for the rest.
fn number(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{buckets, Metrics};

    /// Golden exposition: one counter, one gauge, one histogram.
    #[test]
    fn exposition_matches_golden_output() {
        let m = Metrics::recording();
        m.add_env("cache_hit", 2);
        m.gauge("best_margin", -0.25);
        for v in [0.5, 3.0, 200.0] {
            m.observe("waves_per_job", buckets::WAVES, v);
        }
        let text = to_prometheus(&m.snapshot(false));
        let expected = "\
# HELP snbc_cache_hit snbc-metrics/1 counter cache_hit
# TYPE snbc_cache_hit counter
snbc_cache_hit 2
# HELP snbc_best_margin snbc-metrics/1 gauge best_margin
# TYPE snbc_best_margin gauge
snbc_best_margin -0.25
# HELP snbc_waves_per_job snbc-metrics/1 histogram waves_per_job
# TYPE snbc_waves_per_job histogram
snbc_waves_per_job_bucket{le=\"1\"} 1
snbc_waves_per_job_bucket{le=\"2\"} 1
snbc_waves_per_job_bucket{le=\"4\"} 2
snbc_waves_per_job_bucket{le=\"8\"} 2
snbc_waves_per_job_bucket{le=\"16\"} 2
snbc_waves_per_job_bucket{le=\"32\"} 2
snbc_waves_per_job_bucket{le=\"+Inf\"} 3
snbc_waves_per_job_sum 203.5
snbc_waves_per_job_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn names_are_sanitized_and_specials_spelled() {
        assert_eq!(metric_name("verify-rung.feasible"), "snbc_verify_rung_feasible");
        assert_eq!(number(f64::NAN), "NaN");
        assert_eq!(number(f64::INFINITY), "+Inf");
        assert_eq!(number(f64::NEG_INFINITY), "-Inf");
    }
}
