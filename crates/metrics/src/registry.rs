//! The typed metric registry: counters, gauges, fixed-bucket histograms.
//!
//! A [`Metrics`] handle is a cheap clone (an `Arc` around the registry, or
//! nothing at all when off — the off handle makes every operation a no-op so
//! instrumented code needs no `if` forests). Concurrent producers do **not**
//! share a registry: each gets a [`Metrics::fork`] and the driver calls
//! [`Metrics::merge`] in a fixed order at a barrier, which keeps every
//! float accumulation order — histogram sums, gauge last-writes —
//! independent of `SNBC_THREADS`.
//!
//! Histograms use **static bucket grids** (see [`buckets`]): the grid is
//! part of the observation site, not runtime state, so two forks of the
//! same histogram always have index-aligned buckets and merging is an
//! elementwise integer add — bitwise deterministic by construction.
//!
//! # Environmental metrics
//!
//! Counters and gauges recorded via [`Metrics::add_env`] /
//! [`Metrics::gauge_env`] are marked *environmental*: they describe the
//! machine or run conditions (cache temperature, wall clock) rather than
//! the mathematical run. A canonical snapshot
//! ([`Metrics::snapshot`]`(true)`) excludes them, which is what makes the
//! snapshot byte-identical across cold/warm cache runs; the full snapshot
//! (and the Prometheus exposition built from it) includes everything.

use std::sync::{Arc, Mutex, MutexGuard};

use snbc_trace::json::{self, Value};

/// Schema tag of the snapshot document.
pub const METRICS_SCHEMA: &str = "snbc-metrics/1";

/// Static bucket grids shared by every observation site of a histogram.
///
/// Grids are `&'static` by convention so the same name can never be
/// observed against two different grids from different call sites — the
/// registry additionally ignores (in release) or flags (in debug) an
/// observation whose grid disagrees with the histogram's first one.
pub mod buckets {
    /// Counterexample points fed back per CEGIS round.
    pub const POINTS: &[f64] = &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
    /// Final learner loss per round (log-ish grid).
    pub const LOSS: &[f64] = &[1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];
    /// Race waves per job.
    pub const WAVES: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
    /// Interval-oracle boxes processed per query.
    pub const BOXES: &[f64] = &[100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0];
}

#[derive(Debug, Default)]
struct Counter {
    name: String,
    value: u64,
    env: bool,
}

#[derive(Debug)]
struct Gauge {
    name: String,
    value: f64,
    env: bool,
}

#[derive(Debug)]
struct Hist {
    name: String,
    bounds: Vec<f64>,
    /// One slot per bound plus the overflow bucket (`> bounds.last()`).
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

/// Registry state behind a handle. Entries keep insertion order; snapshots
/// sort by name, so the serialized form is independent of which fork
/// introduced a metric first.
#[derive(Debug, Default)]
struct Registry {
    counters: Vec<Counter>,
    gauges: Vec<Gauge>,
    hists: Vec<Hist>,
}

/// A handle to a metric registry; cheap to clone, no-op when off.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    rec: Option<Arc<Mutex<Registry>>>,
}

impl Metrics {
    /// A disabled handle: every operation is a no-op.
    pub fn off() -> Metrics {
        Metrics { rec: None }
    }

    /// A fresh recording registry.
    pub fn recording() -> Metrics {
        Metrics {
            rec: Some(Arc::new(Mutex::new(Registry::default()))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }

    /// A fresh independent registry when this handle records, otherwise an
    /// off handle. Forks are how concurrent producers (racing candidates,
    /// batch jobs) record without sharing state; the driver merges them in
    /// a fixed order with [`Metrics::merge`].
    pub fn fork(&self) -> Metrics {
        if self.is_recording() {
            Metrics::recording()
        } else {
            Metrics::off()
        }
    }

    fn lock(&self) -> Option<MutexGuard<'_, Registry>> {
        // A poisoned lock only means another thread panicked mid-update;
        // the registry itself is a flat bag of counters and stays usable.
        self.rec.as_ref().map(|m| match m.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        })
    }

    /// Adds `delta` to the monotonic counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        self.add_impl(name, delta, false);
    }

    /// Adds `delta` to an **environmental** counter (cache temperature,
    /// retry counts — anything a canonical snapshot must exclude).
    pub fn add_env(&self, name: &str, delta: u64) {
        self.add_impl(name, delta, true);
    }

    fn add_impl(&self, name: &str, delta: u64, env: bool) {
        if let Some(mut reg) = self.lock() {
            if let Some(i) = reg.counters.iter().position(|c| c.name == name) {
                let c = &mut reg.counters[i];
                c.value = c.value.saturating_add(delta);
                c.env |= env;
            } else {
                reg.counters.push(Counter {
                    name: name.to_string(),
                    value: delta,
                    env,
                });
            }
        }
    }

    /// Sets the gauge `name` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        self.gauge_impl(name, value, false);
    }

    /// Sets an **environmental** gauge (excluded from canonical snapshots).
    pub fn gauge_env(&self, name: &str, value: f64) {
        self.gauge_impl(name, value, true);
    }

    fn gauge_impl(&self, name: &str, value: f64, env: bool) {
        if let Some(mut reg) = self.lock() {
            if let Some(i) = reg.gauges.iter().position(|g| g.name == name) {
                let g = &mut reg.gauges[i];
                g.value = value;
                g.env |= env;
            } else {
                reg.gauges.push(Gauge {
                    name: name.to_string(),
                    value,
                    env,
                });
            }
        }
    }

    /// Observes `value` into the fixed-bucket histogram `name`. The grid is
    /// the histogram's identity: pass the same static grid (see
    /// [`buckets`]) at every observation site. An observation against a
    /// mismatched grid is dropped (and flagged in debug builds) rather than
    /// corrupting bucket alignment.
    pub fn observe(&self, name: &str, bounds: &'static [f64], value: f64) {
        if let Some(mut reg) = self.lock() {
            let idx = match reg.hists.iter().position(|h| h.name == name) {
                Some(i) => i,
                None => {
                    reg.hists.push(Hist {
                        name: name.to_string(),
                        bounds: bounds.to_vec(),
                        counts: vec![0; bounds.len() + 1],
                        sum: 0.0,
                        count: 0,
                    });
                    reg.hists.len() - 1
                }
            };
            let hist = &mut reg.hists[idx];
            if hist.bounds != bounds {
                debug_assert!(false, "histogram `{name}` observed with a different grid");
                return;
            }
            let bucket = hist
                .bounds
                .iter()
                .position(|&b| value <= b)
                .unwrap_or(hist.bounds.len());
            hist.counts[bucket] += 1;
            hist.sum += value;
            hist.count += 1;
        }
    }

    /// Merges `child`'s registry into this one, entry by entry in the
    /// child's insertion order: counters add, gauges overwrite (the merged
    /// child's value wins), histogram buckets add elementwise. Call this in
    /// a **fixed order** over forks (grid index, job index) — that order is
    /// what makes float accumulation (histogram sums) deterministic.
    pub fn merge(&self, child: &Metrics) {
        let snap = child.snapshot(false);
        self.merge_snapshot(&snap);
    }

    /// Merges a parsed snapshot (e.g. a per-job registry replayed from the
    /// certificate cache) into this registry. Identical semantics to
    /// [`Metrics::merge`].
    pub fn merge_snapshot(&self, snap: &MetricsSnapshot) {
        for c in &snap.counters {
            self.add_impl(&c.name, c.value, c.env);
        }
        for g in &snap.gauges {
            self.gauge_impl(&g.name, g.value, g.env);
        }
        if let Some(mut reg) = self.lock() {
            for h in &snap.hists {
                if let Some(i) = reg.hists.iter().position(|x| x.name == h.name) {
                    let existing = &mut reg.hists[i];
                    if existing.bounds != h.bounds {
                        debug_assert!(false, "histogram `{}` merged with a different grid", h.name);
                        continue;
                    }
                    for (slot, add) in existing.counts.iter_mut().zip(&h.counts) {
                        *slot += add;
                    }
                    existing.sum += h.sum;
                    existing.count += h.count;
                } else {
                    reg.hists.push(Hist {
                        name: h.name.clone(),
                        bounds: h.bounds.clone(),
                        counts: h.counts.clone(),
                        sum: h.sum,
                        count: h.count,
                    });
                }
            }
        }
    }

    /// Snapshots the registry, sorted by metric name. With `canonical =
    /// true`, environmental entries are excluded — the canonical snapshot
    /// is the artifact that must be byte-identical across thread counts and
    /// cache temperature.
    pub fn snapshot(&self, canonical: bool) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        if let Some(reg) = self.lock() {
            for c in &reg.counters {
                if canonical && c.env {
                    continue;
                }
                snap.counters.push(CounterSnapshot {
                    name: c.name.clone(),
                    value: c.value,
                    env: c.env,
                });
            }
            for g in &reg.gauges {
                if canonical && g.env {
                    continue;
                }
                snap.gauges.push(GaugeSnapshot {
                    name: g.name.clone(),
                    value: g.value,
                    env: g.env,
                });
            }
            for h in &reg.hists {
                snap.hists.push(HistogramSnapshot {
                    name: h.name.clone(),
                    bounds: h.bounds.clone(),
                    counts: h.counts.clone(),
                    sum: h.sum,
                    count: h.count,
                });
            }
        }
        snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
        snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        snap.hists.sort_by(|a, b| a.name.cmp(&b.name));
        snap
    }
}

/// One counter in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
    pub env: bool,
}

/// One gauge in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    pub name: String,
    pub value: f64,
    pub env: bool,
}

/// One histogram in a snapshot: per-bucket counts (not cumulative; the
/// Prometheus writer accumulates), the grid, and the sum/count pair.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
    pub sum: f64,
    pub count: u64,
}

/// A point-in-time registry snapshot; serializes to the `snbc-metrics/1`
/// document and back **byte-identically** (floats carry their exact IEEE
/// bit patterns next to the human-readable value, in the style of the
/// `snbc-cache-key/1` canonical document).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSnapshot>,
    pub gauges: Vec<GaugeSnapshot>,
    pub hists: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The `snbc-metrics/1` JSON document.
    pub fn to_json(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|c| {
                Value::Obj(vec![
                    ("name".to_string(), Value::Str(c.name.clone())),
                    ("value".to_string(), Value::Int(c.value)),
                    ("env".to_string(), Value::Bool(c.env)),
                ])
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|g| {
                Value::Obj(vec![
                    ("name".to_string(), Value::Str(g.name.clone())),
                    // `value` is for humans (null when non-finite); `bits`
                    // is authoritative and keeps the round-trip byte-exact.
                    ("value".to_string(), Value::Num(g.value)),
                    ("bits".to_string(), Value::Int(g.value.to_bits())),
                    ("env".to_string(), Value::Bool(g.env)),
                ])
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|h| {
                Value::Obj(vec![
                    ("name".to_string(), Value::Str(h.name.clone())),
                    (
                        "bounds".to_string(),
                        Value::Arr(h.bounds.iter().map(|&b| Value::Num(b)).collect()),
                    ),
                    (
                        "counts".to_string(),
                        Value::Arr(h.counts.iter().map(|&c| Value::Int(c)).collect()),
                    ),
                    ("sum".to_string(), Value::Num(h.sum)),
                    ("sum_bits".to_string(), Value::Int(h.sum.to_bits())),
                    ("count".to_string(), Value::Int(h.count)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(METRICS_SCHEMA.to_string())),
            ("counters".to_string(), Value::Arr(counters)),
            ("gauges".to_string(), Value::Arr(gauges)),
            ("histograms".to_string(), Value::Arr(hists)),
        ])
    }

    /// Pretty `snbc-metrics/1` text (the `--metrics-json` artifact).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Parses an `snbc-metrics/1` document.
    ///
    /// # Errors
    ///
    /// Malformed JSON, a wrong/missing schema tag, or missing fields.
    pub fn parse(text: &str) -> Result<MetricsSnapshot, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        match v.get("schema").and_then(Value::as_str) {
            Some(METRICS_SCHEMA) => {}
            other => return Err(format!("expected schema {METRICS_SCHEMA:?}, got {other:?}")),
        }
        let name_of = |o: &Value| -> Result<String, String> {
            o.get("name")
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| "metric entry missing `name`".to_string())
        };
        let env_of = |o: &Value| matches!(o.get("env"), Some(Value::Bool(true)));
        let mut snap = MetricsSnapshot::default();
        for c in arr(&v, "counters")? {
            snap.counters.push(CounterSnapshot {
                name: name_of(c)?,
                value: c
                    .get("value")
                    .and_then(Value::as_u64)
                    .ok_or("counter missing `value`")?,
                env: env_of(c),
            });
        }
        for g in arr(&v, "gauges")? {
            snap.gauges.push(GaugeSnapshot {
                name: name_of(g)?,
                value: f64::from_bits(
                    g.get("bits")
                        .and_then(Value::as_u64)
                        .ok_or("gauge missing `bits`")?,
                ),
                env: env_of(g),
            });
        }
        for h in arr(&v, "histograms")? {
            let bounds = h
                .get("bounds")
                .and_then(Value::as_array)
                .ok_or("histogram missing `bounds`")?
                .iter()
                .map(|b| b.as_f64().ok_or("non-numeric bound"))
                .collect::<Result<Vec<f64>, _>>()?;
            let counts = h
                .get("counts")
                .and_then(Value::as_array)
                .ok_or("histogram missing `counts`")?
                .iter()
                .map(|c| c.as_u64().ok_or("non-integer bucket count"))
                .collect::<Result<Vec<u64>, _>>()?;
            if counts.len() != bounds.len() + 1 {
                return Err("histogram bucket/bound arity mismatch".to_string());
            }
            snap.hists.push(HistogramSnapshot {
                name: name_of(h)?,
                bounds,
                counts,
                sum: f64::from_bits(
                    h.get("sum_bits")
                        .and_then(Value::as_u64)
                        .ok_or("histogram missing `sum_bits`")?,
                ),
                count: h
                    .get("count")
                    .and_then(Value::as_u64)
                    .ok_or("histogram missing `count`")?,
            });
        }
        Ok(snap)
    }

    /// Convenience lookup of a counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Convenience lookup of a gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }
}

fn arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    v.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing array `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let m = Metrics::recording();
        m.add("rounds", 2);
        m.add("rounds", 3);
        m.gauge("loss", 0.5);
        m.gauge("loss", 0.25);
        let snap = m.snapshot(false);
        assert_eq!(snap.counter("rounds"), 5);
        assert_eq!(snap.gauge("loss"), Some(0.25));
        // Off handles are inert.
        let off = Metrics::off();
        off.add("rounds", 7);
        assert_eq!(off.snapshot(false).counters.len(), 0);
    }

    #[test]
    fn histogram_buckets_and_merge_are_index_aligned() {
        let a = Metrics::recording();
        let b = a.fork();
        for v in [0.0, 1.0, 3.0, 100.0] {
            a.observe("points", buckets::POINTS, v);
        }
        for v in [2.0, 5.0] {
            b.observe("points", buckets::POINTS, v);
        }
        a.merge(&b);
        let snap = a.snapshot(false);
        let h = &snap.hists[0];
        assert_eq!(h.bounds, buckets::POINTS.to_vec());
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 111.0);
        // Buckets: ≤0:1 (0.0), ≤1:1 (1.0), ≤2:1 (2.0), ≤4:1 (3.0),
        // ≤8:1 (5.0), ≤16:0, ≤32:0, ≤64:0, overflow:1 (100.0).
        assert_eq!(h.counts, vec![1, 1, 1, 1, 1, 0, 0, 0, 1]);

        // Merging forks in index order is associative on integer buckets:
        // the same observations split differently give the same snapshot.
        let c = Metrics::recording();
        for v in [0.0, 1.0, 3.0, 100.0, 2.0, 5.0] {
            c.observe("points", buckets::POINTS, v);
        }
        assert_eq!(c.snapshot(false).hists[0].counts, h.counts);
    }

    #[test]
    fn snapshot_round_trips_byte_identically() {
        let m = Metrics::recording();
        m.add("waves", 9);
        m.add_env("cache_hit", 1);
        m.gauge("margin", -1.0 / 3.0);
        m.gauge_env("wall_us", 123.0);
        m.observe("loss", buckets::LOSS, 0.05);
        let text = m.snapshot(false).to_json_string();
        let back = MetricsSnapshot::parse(&text).expect("parses");
        assert_eq!(back.to_json_string(), text, "byte-identical round-trip");
    }

    #[test]
    fn canonical_snapshot_excludes_environmental_entries() {
        let m = Metrics::recording();
        m.add("waves", 4);
        m.add_env("cache_miss", 1);
        m.gauge_env("wall_us", 1.0);
        let full = m.snapshot(false);
        let canon = m.snapshot(true);
        assert_eq!(full.counters.len(), 2);
        assert_eq!(canon.counters.len(), 1);
        assert_eq!(canon.counter("waves"), 4);
        assert!(canon.gauges.is_empty());
    }

    #[test]
    fn merge_snapshot_matches_direct_merge() {
        let direct = Metrics::recording();
        let via_snapshot = Metrics::recording();
        let child = Metrics::recording();
        child.add("rounds", 3);
        child.observe("points", buckets::POINTS, 7.0);
        direct.merge(&child);
        let snap_text = child.snapshot(false).to_json_string();
        let parsed = MetricsSnapshot::parse(&snap_text).expect("parses");
        via_snapshot.merge_snapshot(&parsed);
        assert_eq!(
            direct.snapshot(false).to_json_string(),
            via_snapshot.snapshot(false).to_json_string()
        );
    }

    #[test]
    fn non_finite_gauges_survive_the_round_trip() {
        let m = Metrics::recording();
        m.gauge("bad", f64::NEG_INFINITY);
        let text = m.snapshot(false).to_json_string();
        assert!(text.contains("\"value\": null"), "humans see null");
        let back = MetricsSnapshot::parse(&text).expect("parses");
        assert_eq!(back.gauge("bad").map(f64::to_bits), Some(f64::NEG_INFINITY.to_bits()));
        assert_eq!(back.to_json_string(), text);
    }
}
