//! Deterministic metrics and live progress streaming for the SNBC pipeline.
//!
//! This crate is the *quantitative* observability layer, sitting between
//! `snbc-trace` (timelines: *when* did each phase run) and `snbc-telemetry`
//! (run reports: *what* did a finished run do). It answers two questions the
//! other two layers cannot:
//!
//! * **What are the aggregate counts right now?** — the [`Metrics`]
//!   registry: monotonic counters, gauges, and fixed-bucket histograms
//!   whose merges are index-ordered and therefore bitwise deterministic at
//!   any `SNBC_THREADS` setting. A registry snapshots to the canonical
//!   `snbc-metrics/1` JSON document ([`MetricsSnapshot`], byte-identical
//!   round-trip) and to Prometheus text exposition
//!   ([`prom::to_prometheus`], textfile-collector style — no network).
//! * **What is the pipeline doing while it runs?** — the [`Progress`]
//!   stream: typed `snbc-progress/1` events (`job-start`, `round`,
//!   `learn-epoch`, `verify-rung`, `cex`, `wave`, `cache-hit`, `job-done`)
//!   written line-buffered as NDJSON with monotonically increasing sequence
//!   numbers, so a consumer can follow a `snbc batch` run round-by-round.
//!
//! # Determinism model
//!
//! Both halves follow the same discipline as `snbc-telemetry`'s
//! `fork`/`adopt`: concurrent producers write into private forks
//! ([`Metrics::fork`], [`Progress::fork_buffer`]) and a single-threaded
//! driver merges them in a **fixed index order** at a barrier
//! ([`Metrics::merge`], [`Progress::drain_into`]). Because every producer is
//! deterministic in isolation and the merge order is fixed, the merged
//! registry and the drained event sequence are byte-identical at any worker
//! count.
//!
//! Wall-clock and cache-temperature effects are quarantined rather than
//! forbidden: live NDJSON lines carry a `t_us` timestamp and `cache-hit`
//! events, while the **canonical** stream mode strips `t_us` and skips
//! *environmental* events, and [`Metrics::snapshot`] with `canonical =
//! true` skips environment-dependent entries (`add_env`/`gauge_env`). The
//! canonical artifacts are byte-identical across `SNBC_THREADS` settings
//! *and* across cold/warm cache runs (`tests/progress_determinism.rs` holds
//! that line); the live artifacts are for humans and dashboards.
//!
//! All timestamps come from [`snbc_trace::now_us`] — the workspace's single
//! sanctioned clock — so this crate never reads `Instant` directly.

pub mod progress;
pub mod prom;
pub mod registry;

pub use progress::{EventSink, Progress, ProgressEvent, Scope, PROGRESS_SCHEMA};
pub use registry::{buckets, HistogramSnapshot, Metrics, MetricsSnapshot, METRICS_SCHEMA};

// The hand-rolled JSON module both schemas serialize through; re-exported
// (like `snbc-telemetry` does) so downstream crates need no direct
// `snbc-trace` dependency to parse snapshots or progress lines.
pub use snbc_trace::json;
