//! Registry merge semantics: bucket boundary placement, fork/merge
//! associativity at wave barriers, and the canonical-vs-full snapshot split.
//!
//! These pin the exact properties the deterministic telemetry contract
//! leans on: `position(|&b| value <= b)` is boundary-inclusive, fixed-order
//! merges are associative (bitwise, given exactly-representable sums), and
//! environmental entries never reach the canonical artifact.

use snbc_metrics::{buckets, Metrics};

#[test]
fn histogram_bucket_boundaries_are_inclusive() {
    let m = Metrics::recording();
    // WAVES grid: [1, 2, 4, 8, 16, 32] → 7 slots (6 bounds + overflow).
    for v in [
        -3.0, // below every bound → bucket 0
        1.0,  // == bounds[0] → bucket 0 (boundary-inclusive)
        1.5,  // just above → bucket 1
        2.0,  // == bounds[1] → bucket 1
        32.0, // == last bound → bucket 5
        33.0, // above last bound → overflow slot
    ] {
        m.observe("waves", buckets::WAVES, v);
    }
    let snap = m.snapshot(true);
    let h = &snap.hists[0];
    assert_eq!(h.bounds, buckets::WAVES.to_vec());
    assert_eq!(h.counts.len(), buckets::WAVES.len() + 1);
    assert_eq!(h.counts, vec![2, 2, 0, 0, 0, 1, 1]);
    assert_eq!(h.count, 6);
}

#[test]
fn fork_merge_is_associative_at_wave_barriers() {
    // Three workers fork at a wave barrier and record independently. The
    // driver may merge them flat (root ← a, b, c) or through an intermediate
    // registry (root ← (a ← b), c) — as long as the *sequence* order is the
    // same, the result must be bitwise identical, counters and float sums
    // alike. Power-of-two values make the sums exactly representable, so
    // equality here is exact, not approximate.
    let record = |m: &Metrics, k: u64| {
        m.add("candidates", k);
        m.gauge("last_loss", 1.0 / (k as f64));
        m.observe("points", buckets::POINTS, (1u64 << k) as f64);
        m.observe("points", buckets::POINTS, 0.5 * k as f64);
    };

    // Flat: root absorbs a, b, c in wave order.
    let flat = Metrics::recording();
    for k in 1..=3 {
        let worker = flat.fork();
        record(&worker, k);
        flat.merge(&worker);
    }

    // Nested: a absorbs b first, then root absorbs (a+b), then c.
    let nested = Metrics::recording();
    let a = nested.fork();
    record(&a, 1);
    let b = a.fork();
    record(&b, 2);
    a.merge(&b);
    nested.merge(&a);
    let c = nested.fork();
    record(&c, 3);
    nested.merge(&c);

    let flat_snap = flat.snapshot(false);
    let nested_snap = nested.snapshot(false);
    assert_eq!(flat_snap.counter("candidates"), 6);
    assert_eq!(flat_snap.to_json_string(), nested_snap.to_json_string());
    // Bitwise, not approximate: the histogram sums went through the same
    // addition sequence, so even their bit patterns agree.
    assert_eq!(
        flat_snap.hists[0].sum.to_bits(),
        nested_snap.hists[0].sum.to_bits()
    );
    // Gauges are last-write-wins in merge order: the wave-3 worker wrote last.
    assert_eq!(flat_snap.gauge("last_loss"), Some(1.0 / 3.0));
}

#[test]
fn canonical_snapshot_excludes_env_entries_full_keeps_them() {
    let m = Metrics::recording();
    m.add("iterations", 7);
    m.add_env("cache_hits", 3);
    m.gauge("margin", 0.25);
    m.gauge_env("queue_depth", 9.0);
    m.observe("loss", buckets::LOSS, 0.5);

    let full = m.snapshot(false);
    let canonical = m.snapshot(true);

    // Full sees everything, env entries flagged.
    assert_eq!(full.counter("iterations"), 7);
    assert_eq!(full.counter("cache_hits"), 3);
    assert_eq!(full.gauge("queue_depth"), Some(9.0));
    assert!(full.counters.iter().any(|c| c.name == "cache_hits" && c.env));

    // Canonical drops exactly the env entries; histograms always survive.
    assert_eq!(canonical.counter("iterations"), 7);
    assert_eq!(canonical.counter("cache_hits"), 0);
    assert_eq!(canonical.gauge("queue_depth"), None);
    assert_eq!(canonical.gauge("margin"), Some(0.25));
    assert_eq!(canonical.hists.len(), 1);

    // The two artifacts differ only by the env entries.
    let full_json = full.to_json_string();
    let canon_json = canonical.to_json_string();
    assert_ne!(full_json, canon_json);
    assert!(full_json.contains("cache_hits") && full_json.contains("queue_depth"));
    assert!(!canon_json.contains("cache_hits") && !canon_json.contains("queue_depth"));

    // Merging an env-carrying snapshot into a fresh registry preserves the
    // env flag — replayed cache-job metrics stay environmental.
    let replay = Metrics::recording();
    replay.merge_snapshot(&full);
    let replayed = replay.snapshot(true);
    assert_eq!(replayed.counter("cache_hits"), 0);
    assert_eq!(replayed.counter("iterations"), 7);
}
